package energy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPoint(t *testing.T) {
	d := Point(3.5)
	if d.Mean() != 3.5 || d.Min() != 3.5 || d.Max() != 3.5 {
		t.Fatalf("Point(3.5) moments wrong: %v", d)
	}
	if d.Variance() != 0 {
		t.Fatalf("Point variance = %v, want 0", d.Variance())
	}
	if d.Len() != 1 {
		t.Fatalf("Point support size = %d", d.Len())
	}
}

func TestBernoulli(t *testing.T) {
	d := Bernoulli(0.3)
	if !almostEq(d.Mean(), 0.3, 1e-12) {
		t.Fatalf("Bernoulli(0.3) mean = %v", d.Mean())
	}
	if !almostEq(d.Variance(), 0.21, 1e-12) {
		t.Fatalf("Bernoulli(0.3) var = %v, want 0.21", d.Variance())
	}
	if d.Prob(1) != 0.3 || d.Prob(0) != 0.7 {
		t.Fatalf("Bernoulli(0.3) masses wrong: %v", d)
	}
}

func TestBernoulliDegenerate(t *testing.T) {
	if d := Bernoulli(0); d.Len() != 1 || d.Max() != 0 {
		t.Fatalf("Bernoulli(0) = %v", d)
	}
	if d := Bernoulli(1); d.Len() != 1 || d.Min() != 1 {
		t.Fatalf("Bernoulli(1) = %v", d)
	}
}

func TestBernoulliPanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bernoulli(%v) did not panic", p)
				}
			}()
			Bernoulli(p)
		}()
	}
}

func TestCategoricalNormalizesAndMerges(t *testing.T) {
	d := Categorical([]float64{2, 1, 2}, []float64{1, 2, 1})
	if d.Len() != 2 {
		t.Fatalf("support = %d, want 2 (duplicates merged)", d.Len())
	}
	if !almostEq(d.Prob(1), 0.5, 1e-12) || !almostEq(d.Prob(2), 0.5, 1e-12) {
		t.Fatalf("masses wrong: %v", d)
	}
	if !almostEq(d.TotalProb(), 1, 1e-12) {
		t.Fatalf("total prob = %v", d.TotalProb())
	}
}

func TestCategoricalDropsZeroMass(t *testing.T) {
	d := Categorical([]float64{1, 2, 3}, []float64{0.5, 0, 0.5})
	if d.Len() != 2 || d.Prob(2) != 0 {
		t.Fatalf("zero-mass point not dropped: %v", d)
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		probs  []float64
	}{
		{"mismatch", []float64{1}, []float64{1, 2}},
		{"empty", nil, nil},
		{"negative", []float64{1}, []float64{-1}},
		{"zero-sum", []float64{1, 2}, []float64{0, 0}},
		{"nan-value", []float64{math.NaN()}, []float64{1}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical %s did not panic", c.name)
				}
			}()
			Categorical(c.values, c.probs)
		}()
	}
}

func TestAddConvolution(t *testing.T) {
	a := Bernoulli(0.5)
	b := Bernoulli(0.5)
	s := a.Add(b) // Binomial(2, 0.5)
	want := Categorical([]float64{0, 1, 2}, []float64{0.25, 0.5, 0.25})
	if !s.Equal(want, 1e-12) {
		t.Fatalf("Bernoulli+Bernoulli = %v, want %v", s, want)
	}
}

func TestAddWithZeroDist(t *testing.T) {
	var z Dist
	d := Point(4)
	if got := z.Add(d); !got.Equal(d, 0) {
		t.Fatalf("zero.Add(d) = %v", got)
	}
	if got := d.Add(z); !got.Equal(d, 0) {
		t.Fatalf("d.Add(zero) = %v", got)
	}
}

func TestScaleNegativeReordersSupport(t *testing.T) {
	d := Categorical([]float64{1, 2}, []float64{0.25, 0.75}).Scale(-1)
	if d.Min() != -2 || d.Max() != -1 {
		t.Fatalf("Scale(-1) support wrong: %v", d)
	}
	if !almostEq(d.Prob(-2), 0.75, 1e-12) {
		t.Fatalf("Scale(-1) masses wrong: %v", d)
	}
}

func TestMapMergesEqualOutputs(t *testing.T) {
	d := Categorical([]float64{-1, 1}, []float64{0.5, 0.5}).Map(math.Abs)
	if d.Len() != 1 || d.Prob(1) != 1 {
		t.Fatalf("Map(abs) = %v, want point at 1", d)
	}
}

func TestMix(t *testing.T) {
	d := Mix([]float64{1, 3}, []Dist{Point(0), Point(4)})
	if !almostEq(d.Mean(), 3, 1e-12) {
		t.Fatalf("Mix mean = %v, want 3", d.Mean())
	}
	if !almostEq(d.Prob(0), 0.25, 1e-12) || !almostEq(d.Prob(4), 0.75, 1e-12) {
		t.Fatalf("Mix masses: %v", d)
	}
}

func TestMixZeroDistActsAsPointZero(t *testing.T) {
	var z Dist
	d := Mix([]float64{1, 1}, []Dist{z, Point(2)})
	if !almostEq(d.Prob(0), 0.5, 1e-12) || !almostEq(d.Prob(2), 0.5, 1e-12) {
		t.Fatalf("Mix with zero dist: %v", d)
	}
}

func TestMixPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Mix length mismatch did not panic")
			}
		}()
		Mix([]float64{1}, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Mix zero weights did not panic")
			}
		}()
		Mix([]float64{0, 0}, []Dist{Point(1), Point(2)})
	}()
}

func TestRepeatMatchesIteratedAdd(t *testing.T) {
	d := Bernoulli(0.3)
	byRepeat := d.Repeat(5)
	byAdd := Point(0)
	for i := 0; i < 5; i++ {
		byAdd = byAdd.Add(d)
	}
	if !byRepeat.Equal(byAdd, 1e-9) {
		t.Fatalf("Repeat(5)=%v iterated=%v", byRepeat, byAdd)
	}
	if !byRepeat.Equal(Point(0).Add(byRepeat), 1e-12) {
		t.Fatal("Repeat not stable under adding Point(0)")
	}
}

func TestRepeatZeroAndPanic(t *testing.T) {
	if d := Point(3).Repeat(0); !d.Equal(Point(0), 0) {
		t.Fatalf("Repeat(0) = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("Repeat(-1) did not panic")
		}
	}()
	Point(1).Repeat(-1)
}

func TestCompactPreservesMeanAndBounds(t *testing.T) {
	// Sum of 40 3-point distributions would have a huge support; verify it
	// is capped and that the mean is preserved exactly (merging is
	// probability-weighted) and bounds are preserved approximately.
	d := Categorical([]float64{0, 1, 7}, []float64{0.2, 0.5, 0.3})
	sum := Point(0)
	for i := 0; i < 40; i++ {
		sum = sum.Add(d)
	}
	if sum.Len() > MaxSupport {
		t.Fatalf("support %d exceeds MaxSupport %d", sum.Len(), MaxSupport)
	}
	wantMean := 40 * d.Mean()
	if !almostEq(sum.Mean(), wantMean, 1e-6*wantMean) {
		t.Fatalf("mean after compaction = %v, want %v", sum.Mean(), wantMean)
	}
	if sum.Min() < 0 || sum.Max() > 7*40 {
		t.Fatalf("bounds escaped range: [%v, %v]", sum.Min(), sum.Max())
	}
}

func TestQuantile(t *testing.T) {
	d := Categorical([]float64{1, 2, 3}, []float64{0.25, 0.5, 0.25})
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 1}, {0.3, 2}, {0.75, 2}, {0.9, 3}, {1, 3},
		{-1, 1}, {2, 3}, // clamped
	}
	for _, c := range cases {
		if got := d.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Categorical([]float64{0, 10}, []float64{0.25, 0.75})
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	got := sum / float64(n)
	if !almostEq(got, 7.5, 0.2) {
		t.Fatalf("sample mean = %v, want ≈7.5", got)
	}
}

func TestSampleZeroDist(t *testing.T) {
	var z Dist
	rng := rand.New(rand.NewSource(1))
	if got := z.Sample(rng); got != 0 {
		t.Fatalf("zero dist sample = %v", got)
	}
}

func TestStringForms(t *testing.T) {
	var z Dist
	if z.String() != "{}" {
		t.Fatalf("zero dist string = %q", z.String())
	}
	small := Bernoulli(0.5)
	if small.String() == "" || small.String()[0] != '{' {
		t.Fatalf("small dist string = %q", small.String())
	}
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = float64(i)
	}
	big := UniformOver(vals...)
	if s := big.String(); s == "" || s[1] != 'n' {
		t.Fatalf("big dist should summarize, got %q", s)
	}
}

// --- property-based tests ---

// clampProb maps an arbitrary float64 into [0,1].
func clampProb(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	x = math.Abs(x)
	return x - math.Floor(x)
}

func clampVal(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}

func TestQuickAddMeanLinear(t *testing.T) {
	f := func(p1, p2, a, b float64) bool {
		d1 := Bernoulli2(clampProb(p1), clampVal(a), 0)
		d2 := Bernoulli2(clampProb(p2), clampVal(b), 0)
		sum := d1.Add(d2)
		want := d1.Mean() + d2.Mean()
		tol := 1e-9 * (1 + math.Abs(want))
		return almostEq(sum.Mean(), want, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddVarianceAdds(t *testing.T) {
	f := func(p1, p2 float64) bool {
		d1 := Bernoulli(clampProb(p1))
		d2 := Bernoulli(clampProb(p2))
		sum := d1.Add(d2)
		want := d1.Variance() + d2.Variance()
		return almostEq(sum.Variance(), want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickScaleMoments(t *testing.T) {
	f := func(p, kRaw float64) bool {
		k := clampVal(kRaw)
		if k == 0 {
			k = 2
		}
		d := Bernoulli(clampProb(p))
		s := d.Scale(k)
		tolM := 1e-9 * (1 + math.Abs(k))
		tolV := 1e-9 * (1 + k*k)
		return almostEq(s.Mean(), k*d.Mean(), tolM) &&
			almostEq(s.Variance(), k*k*d.Variance(), tolV)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickProbabilitiesAlwaysNormalized(t *testing.T) {
	f := func(p1, p2, p3 float64) bool {
		d := Mix(
			[]float64{clampProb(p1) + 0.01, clampProb(p2) + 0.01},
			[]Dist{Bernoulli(clampProb(p3)), Point(2)},
		)
		return almostEq(d.TotalProb(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(p1, p2, a, b float64) bool {
		d1 := Bernoulli2(clampProb(p1), clampVal(a), 0)
		d2 := Bernoulli2(clampProb(p2), clampVal(b), 0)
		return d1.Add(d2).Equal(d2.Add(d1), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinMaxOrdered(t *testing.T) {
	f := func(p, a, b, c float64) bool {
		d := Categorical(
			[]float64{clampVal(a), clampVal(b), clampVal(c)},
			[]float64{clampProb(p) + 0.01, 0.5, 0.5},
		)
		return d.Min() <= d.Mean()+1e-9 && d.Mean() <= d.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
