package energy

import (
	"math"
	"testing"
)

func TestSupportCopy(t *testing.T) {
	d := Categorical([]float64{1, 2, 3}, []float64{1, 1, 1})
	s := d.Support()
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("Support = %v", s)
	}
	s[0] = 99 // mutation must not affect the distribution
	if d.Min() != 1 {
		t.Fatal("Support leaked internal storage")
	}
}

func TestAddConst(t *testing.T) {
	d := Bernoulli(0.25).AddConst(10)
	if d.Min() != 10 || d.Max() != 11 {
		t.Fatalf("AddConst support [%v, %v]", d.Min(), d.Max())
	}
	if !almostEq(d.Mean(), 10.25, 1e-12) {
		t.Fatalf("AddConst mean %v", d.Mean())
	}
	var z Dist
	if got := z.AddConst(5); !got.Equal(Point(5), 0) {
		t.Fatalf("zero.AddConst = %v", got)
	}
}

func TestZeroDistMoments(t *testing.T) {
	var z Dist
	if z.Min() != 0 || z.Max() != 0 || z.Quantile(0.5) != 0 {
		t.Fatal("zero dist moments should be 0")
	}
	if z.Scale(3).Len() != 0 {
		t.Fatal("scaling zero dist should stay zero")
	}
	if z.Map(math.Abs).Len() != 0 {
		t.Fatal("mapping zero dist should stay zero")
	}
}

func TestEqualMismatchCases(t *testing.T) {
	a := Categorical([]float64{1, 2}, []float64{0.5, 0.5})
	b := Categorical([]float64{1, 3}, []float64{0.5, 0.5})
	c := Categorical([]float64{1, 2}, []float64{0.25, 0.75})
	if a.Equal(b, 1e-9) {
		t.Fatal("different supports equal")
	}
	if a.Equal(c, 1e-9) {
		t.Fatal("different probabilities equal")
	}
	if a.Equal(Point(1), 1e-9) {
		t.Fatal("different lengths equal")
	}
}

func TestCompactPreservesTotalProbAndWeightedMean(t *testing.T) {
	// Force heavy compaction: sum of 200 3-point dists.
	d := Categorical([]float64{0, 3, 11}, []float64{0.3, 0.4, 0.3})
	sum := Point(0)
	for i := 0; i < 200; i++ {
		sum = sum.Add(d)
	}
	if sum.Len() > MaxSupport {
		t.Fatalf("support %d over cap", sum.Len())
	}
	if !almostEq(sum.TotalProb(), 1, 1e-9) {
		t.Fatalf("total prob %v", sum.TotalProb())
	}
	want := 200 * d.Mean()
	if !almostEq(sum.Mean(), want, 1e-6*want) {
		t.Fatalf("mean %v, want %v", sum.Mean(), want)
	}
	// Variance should also be close (merging nearest points perturbs it
	// only slightly).
	wantVar := 200 * d.Variance()
	if math.Abs(sum.Variance()-wantVar)/wantVar > 0.05 {
		t.Fatalf("variance %v, want ≈%v", sum.Variance(), wantVar)
	}
}

func TestQuantileMedianOfSymmetric(t *testing.T) {
	d := UniformOver(1, 2, 3, 4, 5)
	if q := d.Quantile(0.5); q != 3 {
		t.Fatalf("median %v, want 3", q)
	}
}

func TestBernoulli2(t *testing.T) {
	d := Bernoulli2(0.25, 7, 2)
	if d.Prob(7) != 0.25 || d.Prob(2) != 0.75 {
		t.Fatalf("Bernoulli2 masses: %v", d)
	}
}
