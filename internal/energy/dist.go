package energy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Dist is a finite discrete probability distribution over float64 values.
//
// Energy interfaces whose energy-critical variables (ECVs) are random
// variables return distributions rather than scalars (§3 of the paper).
// Dist is the common representation: support points are kept sorted and
// deduplicated, probabilities sum to 1 (within floating-point tolerance).
//
// The zero value of Dist is not useful; construct distributions with
// Point, Bernoulli, Categorical, UniformOver, or combinators.
type Dist struct {
	xs []float64 // sorted, strictly increasing
	ps []float64 // same length, each > 0, sums to ~1
}

// MaxSupport bounds the support size of distributions produced by
// combinators. Convolution of n-point distributions grows multiplicatively;
// when a result would exceed MaxSupport, adjacent support points are merged
// (probability-weighted) until the bound is met. This keeps exact-ish
// arithmetic tractable for deep compositions.
const MaxSupport = 512

const probEps = 1e-12

// Point returns the degenerate distribution concentrated at x.
func Point(x float64) Dist {
	return Dist{xs: []float64{x}, ps: []float64{1}}
}

// Bernoulli returns a distribution taking value 1 with probability p and
// 0 with probability 1-p. It panics if p is outside [0,1].
func Bernoulli(p float64) Dist {
	return Bernoulli2(p, 1, 0)
}

// Bernoulli2 returns a distribution taking value hi with probability p and
// lo with probability 1-p. It panics if p is outside [0,1] or NaN.
func Bernoulli2(p, hi, lo float64) Dist {
	if math.IsNaN(p) || p < 0 || p > 1 {
		panic(fmt.Sprintf("energy: Bernoulli probability %v out of [0,1]", p))
	}
	return Categorical([]float64{lo, hi}, []float64{1 - p, p})
}

// Categorical returns a distribution over values with the given
// probabilities. Probabilities must be non-negative and are normalized to
// sum to 1; values with zero probability are dropped; duplicate values are
// merged. It panics if the inputs have mismatched lengths, are empty, or
// the probabilities sum to zero.
func Categorical(values, probs []float64) Dist {
	if len(values) != len(probs) {
		panic("energy: Categorical values/probs length mismatch")
	}
	if len(values) == 0 {
		panic("energy: Categorical with empty support")
	}
	total := 0.0
	for _, p := range probs {
		if math.IsNaN(p) || p < 0 {
			panic(fmt.Sprintf("energy: Categorical probability %v invalid", p))
		}
		total += p
	}
	if total <= 0 {
		panic("energy: Categorical probabilities sum to zero")
	}
	type wp struct{ x, p float64 }
	items := make([]wp, 0, len(values))
	for i, v := range values {
		if probs[i] <= 0 {
			continue
		}
		if math.IsNaN(v) {
			panic("energy: Categorical value is NaN")
		}
		items = append(items, wp{v, probs[i] / total})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].x < items[j].x })
	d := Dist{
		xs: make([]float64, 0, len(items)),
		ps: make([]float64, 0, len(items)),
	}
	for _, it := range items {
		n := len(d.xs)
		if n > 0 && d.xs[n-1] == it.x {
			d.ps[n-1] += it.p
			continue
		}
		d.xs = append(d.xs, it.x)
		d.ps = append(d.ps, it.p)
	}
	return d
}

// UniformOver returns the uniform distribution over the given values.
func UniformOver(values ...float64) Dist {
	probs := make([]float64, len(values))
	for i := range probs {
		probs[i] = 1
	}
	return Categorical(values, probs)
}

// FromSorted reconstructs a Dist from an already-canonical (support, probs)
// pair — strictly increasing values, positive probabilities summing to ~1 —
// exactly as Support/Probs emitted them, without renormalizing. Unlike
// Categorical, the probabilities are stored bit-for-bit, so a Dist
// serialized over a wire and rebuilt here is identical to the original.
// The slices are copied.
func FromSorted(values, probs []float64) (Dist, error) {
	if len(values) != len(probs) {
		return Dist{}, fmt.Errorf("energy: FromSorted values/probs length mismatch (%d vs %d)", len(values), len(probs))
	}
	if len(values) == 0 {
		return Dist{}, fmt.Errorf("energy: FromSorted with empty support")
	}
	total := 0.0
	for i, x := range values {
		if math.IsNaN(x) {
			return Dist{}, fmt.Errorf("energy: FromSorted value %d is NaN", i)
		}
		if i > 0 && values[i-1] >= x {
			return Dist{}, fmt.Errorf("energy: FromSorted values not strictly increasing at %d", i)
		}
		p := probs[i]
		if math.IsNaN(p) || p <= 0 {
			return Dist{}, fmt.Errorf("energy: FromSorted probability %v at %d invalid", p, i)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-6 {
		return Dist{}, fmt.Errorf("energy: FromSorted probabilities sum to %v, want ~1", total)
	}
	d := Dist{xs: make([]float64, len(values)), ps: make([]float64, len(probs))}
	copy(d.xs, values)
	copy(d.ps, probs)
	return d, nil
}

// IsZero reports whether d is the zero (unconstructed) Dist.
func (d Dist) IsZero() bool { return len(d.xs) == 0 }

// Len returns the number of support points.
func (d Dist) Len() int { return len(d.xs) }

// Support returns a copy of the support values in increasing order.
func (d Dist) Support() []float64 {
	out := make([]float64, len(d.xs))
	copy(out, d.xs)
	return out
}

// Probs returns a copy of the probabilities, aligned with Support.
func (d Dist) Probs() []float64 {
	out := make([]float64, len(d.ps))
	copy(out, d.ps)
	return out
}

// Prob returns the probability mass at x (0 if x is not in the support).
func (d Dist) Prob(x float64) float64 {
	i := sort.SearchFloat64s(d.xs, x)
	if i < len(d.xs) && d.xs[i] == x {
		return d.ps[i]
	}
	return 0
}

// Mean returns the expected value.
func (d Dist) Mean() float64 {
	m := 0.0
	for i, x := range d.xs {
		m += x * d.ps[i]
	}
	return m
}

// Variance returns the variance.
func (d Dist) Variance() float64 {
	m := d.Mean()
	v := 0.0
	for i, x := range d.xs {
		dx := x - m
		v += dx * dx * d.ps[i]
	}
	return v
}

// Std returns the standard deviation.
func (d Dist) Std() float64 { return math.Sqrt(d.Variance()) }

// Min returns the smallest support value (best case).
func (d Dist) Min() float64 {
	if d.IsZero() {
		return 0
	}
	return d.xs[0]
}

// Max returns the largest support value. For an energy interface this is
// the worst-case energy consumption, the quantity §4.1's upper-bound
// (spec) interfaces constrain.
func (d Dist) Max() float64 {
	if d.IsZero() {
		return 0
	}
	return d.xs[len(d.xs)-1]
}

// Quantile returns the smallest support value x with P[X <= x] >= q.
// q is clamped to [0,1].
func (d Dist) Quantile(q float64) float64 {
	if d.IsZero() {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	acc := 0.0
	for i, p := range d.ps {
		acc += p
		if acc >= q-probEps {
			return d.xs[i]
		}
	}
	return d.xs[len(d.xs)-1]
}

// Sample draws one value from d using rng.
func (d Dist) Sample(rng *rand.Rand) float64 {
	if d.IsZero() {
		return 0
	}
	u := rng.Float64()
	acc := 0.0
	for i, p := range d.ps {
		acc += p
		if u < acc {
			return d.xs[i]
		}
	}
	return d.xs[len(d.xs)-1]
}

// Add returns the distribution of X+Y for independent X~d, Y~o
// (discrete convolution, computed by a sorted lane merge rather than a
// build-and-sort of the full product). The result support is capped at
// MaxSupport.
func (d Dist) Add(o Dist) Dist {
	if d.IsZero() {
		return o
	}
	if o.IsZero() {
		return d
	}
	return convolve(d, o).compact(MaxSupport)
}

// AddConst returns the distribution of X+c.
func (d Dist) AddConst(c float64) Dist {
	if d.IsZero() {
		return Point(c)
	}
	out := Dist{xs: make([]float64, len(d.xs)), ps: make([]float64, len(d.ps))}
	for i := range d.xs {
		out.xs[i] = d.xs[i] + c
	}
	copy(out.ps, d.ps)
	return out
}

// Scale returns the distribution of k*X. Scaling by a negative k reverses
// the support order, which is handled.
func (d Dist) Scale(k float64) Dist {
	if d.IsZero() {
		return d
	}
	values := make([]float64, len(d.xs))
	for i, x := range d.xs {
		values[i] = k * x
	}
	probs := make([]float64, len(d.ps))
	copy(probs, d.ps)
	return Categorical(values, probs)
}

// Map returns the distribution of f(X). Non-monotone f is fine; equal
// outputs are merged.
func (d Dist) Map(f func(float64) float64) Dist {
	if d.IsZero() {
		return d
	}
	values := make([]float64, len(d.xs))
	for i, x := range d.xs {
		values[i] = f(x)
	}
	probs := make([]float64, len(d.ps))
	copy(probs, d.ps)
	return Categorical(values, probs)
}

// Mix returns the mixture distribution choosing from dists with the given
// weights. Weights are normalized; they must be non-negative and not all
// zero. It panics on length mismatch or empty input.
func Mix(weights []float64, dists []Dist) Dist {
	if len(weights) != len(dists) {
		panic("energy: Mix weights/dists length mismatch")
	}
	if len(dists) == 0 {
		panic("energy: Mix with no components")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("energy: Mix weight %v invalid", w))
		}
		total += w
	}
	if total <= 0 {
		panic("energy: Mix weights sum to zero")
	}
	// Components are already sorted, so the mixture is a k-way merge over
	// the non-zero-weight components rather than a build-and-sort.
	ws := make([]float64, 0, len(dists))
	comps := make([]Dist, 0, len(dists))
	for k, dk := range dists {
		if w := weights[k] / total; w != 0 {
			ws = append(ws, w)
			comps = append(comps, dk)
		}
	}
	return mergeComponents(ws, comps).compact(MaxSupport)
}

// Repeat returns the distribution of the sum of n independent copies of d.
// It uses doubling so the cost is O(log n) convolutions. n must be >= 0;
// Repeat(0) is Point(0).
func (d Dist) Repeat(n int) Dist {
	if n < 0 {
		panic("energy: Repeat with negative count")
	}
	result := Point(0)
	base := d
	for n > 0 {
		if n&1 == 1 {
			result = result.Add(base)
		}
		n >>= 1
		if n > 0 {
			base = base.Add(base)
		}
	}
	return result
}

// compact merges adjacent support points (weighted by probability) until
// the support size is at most limit. Merging adjacent points minimizes the
// introduced error for sorted supports. Smallest gap merges first (ties
// toward the left), via the O(n log n) pair heap in kernels.go.
func (d Dist) compact(limit int) Dist {
	if len(d.xs) <= limit {
		return d
	}
	xs := append([]float64(nil), d.xs...)
	ps := append([]float64(nil), d.ps...)
	xs, ps = compactMerge(xs, ps, limit)
	return Dist{xs: xs, ps: ps}
}

// TotalProb returns the sum of the probability masses (≈1); exposed for
// invariant checking in tests.
func (d Dist) TotalProb() float64 {
	t := 0.0
	for _, p := range d.ps {
		t += p
	}
	return t
}

// Equal reports whether two distributions have identical supports and
// probabilities within tol.
func (d Dist) Equal(o Dist, tol float64) bool {
	if len(d.xs) != len(o.xs) {
		return false
	}
	for i := range d.xs {
		if math.Abs(d.xs[i]-o.xs[i]) > tol || math.Abs(d.ps[i]-o.ps[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the distribution compactly, e.g. "{0:0.30, 5:0.70}".
// Large supports are summarized by moments.
func (d Dist) String() string {
	if d.IsZero() {
		return "{}"
	}
	if len(d.xs) > 8 {
		return fmt.Sprintf("{n=%d mean=%.4g std=%.3g min=%.4g max=%.4g}",
			len(d.xs), d.Mean(), d.Std(), d.Min(), d.Max())
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range d.xs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g:%.3g", x, d.ps[i])
	}
	b.WriteByte('}')
	return b.String()
}
