package energy

import "sync"

// Fast kernels behind the Dist combinators. The public semantics live in
// dist.go; this file holds the sorted-merge convolution, the k-way mixture
// merge, the heap-based support compaction, and the pooled scratch buffers
// that keep the hot paths allocation-light once evaluation itself runs in
// parallel (every worker hits these kernels concurrently, so everything
// here is either per-call state or a sync.Pool).

// --- pooled scratch buffers ---

var (
	f64Pool = sync.Pool{New: func() interface{} { s := make([]float64, 0, 256); return &s }}
	intPool = sync.Pool{New: func() interface{} { s := make([]int, 0, 256); return &s }}
)

// BorrowScratch returns a length-n float64 scratch buffer from a shared
// pool. The buffer contents are unspecified; callers must fully overwrite
// the slots they read. Return it with ReturnScratch when done — after any
// consumer (e.g. Categorical) has copied out of it, since returned buffers
// are reused concurrently. Safe for concurrent use.
func BorrowScratch(n int) []float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return (*p)[:n]
}

// ReturnScratch gives a buffer obtained from BorrowScratch back to the
// pool. The caller must not use buf afterwards.
func ReturnScratch(buf []float64) {
	buf = buf[:0]
	f64Pool.Put(&buf)
}

func borrowInts(n int) []int {
	p := intPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, n)
	}
	return (*p)[:n]
}

func returnInts(s []int) {
	s = s[:0]
	intPool.Put(&s)
}

// --- sorted-merge convolution ---

// convolve computes the distribution of X+Y for independent X~a, Y~b by an
// n-way sorted merge: lane i emits a.xs[i]+b.xs[j] for increasing j, and a
// binary min-heap over lanes pops the sums in globally sorted order, so
// equal sums merge on the fly and no O(nm log nm) sort is needed. Both
// inputs must be non-zero. The result support is NOT capped; the caller
// compacts.
func convolve(a, b Dist) Dist {
	n, m := len(a.xs), len(b.xs)
	if n == 1 {
		return b.AddConst(a.xs[0]) // point mass: pure shift
	}
	if m == 1 {
		return a.AddConst(b.xs[0])
	}
	// Lane state: jj[i] is lane i's cursor into b. The heap is keyed by the
	// lane's current sum; initial keys a.xs[i]+b.xs[0] are already sorted
	// (a.xs is increasing), so the array is born a valid heap.
	jj := borrowInts(n)
	lane := borrowInts(n)
	key := BorrowScratch(n)
	defer returnInts(jj)
	defer returnInts(lane)
	defer ReturnScratch(key)
	for i := 0; i < n; i++ {
		jj[i] = 0
		lane[i] = i
		key[i] = a.xs[i] + b.xs[0]
	}
	size := n
	xs := make([]float64, 0, minInt(n*m, 4*MaxSupport))
	ps := make([]float64, 0, cap(xs))
	for size > 0 {
		x, l := key[0], lane[0]
		p := a.ps[l] * b.ps[jj[l]]
		if k := len(xs); k > 0 && xs[k-1] == x {
			ps[k-1] += p
		} else {
			xs = append(xs, x)
			ps = append(ps, p)
		}
		jj[l]++
		if jj[l] < m {
			key[0] = a.xs[l] + b.xs[jj[l]]
		} else {
			size--
			key[0], lane[0] = key[size], lane[size]
		}
		siftDown(key, lane, size)
	}
	return Dist{xs: xs, ps: ps}
}

// siftDown restores the min-heap property from the root of key[:size],
// carrying lane along.
func siftDown(key []float64, lane []int, size int) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < size && key[l] < key[small] {
			small = l
		}
		if r < size && key[r] < key[small] {
			small = r
		}
		if small == i {
			return
		}
		key[i], key[small] = key[small], key[i]
		lane[i], lane[small] = lane[small], lane[i]
		i = small
	}
}

// mergeComponents computes the mixture of sorted components by a k-way
// merge: a min-heap over components keyed by each component's current
// support value pops values in globally sorted order, merging duplicates.
// comp[i] contributes its support with probabilities scaled by w[i]; zero
// components contribute a single (0, w[i]) point. Weights must already be
// normalized; components with zero weight must be filtered by the caller.
func mergeComponents(w []float64, comps []Dist) Dist {
	k := len(comps)
	point0 := []float64{0}
	point1 := []float64{1}
	laneXS := make([][]float64, k)
	lanePS := make([][]float64, k)
	total := 0
	for i, c := range comps {
		if c.IsZero() {
			laneXS[i], lanePS[i] = point0, point1
		} else {
			laneXS[i], lanePS[i] = c.xs, c.ps
		}
		total += len(laneXS[i])
	}
	jj := borrowInts(k)
	lane := borrowInts(k)
	key := BorrowScratch(k)
	defer returnInts(jj)
	defer returnInts(lane)
	defer ReturnScratch(key)
	size := 0
	for i := 0; i < k; i++ {
		jj[i] = 0
		key[size], lane[size] = laneXS[i][0], i
		siftUp(key, lane, size)
		size++
	}
	xs := make([]float64, 0, total)
	ps := make([]float64, 0, total)
	for size > 0 {
		x, l := key[0], lane[0]
		p := w[l] * lanePS[l][jj[l]]
		if n := len(xs); n > 0 && xs[n-1] == x {
			ps[n-1] += p
		} else {
			xs = append(xs, x)
			ps = append(ps, p)
		}
		jj[l]++
		if jj[l] < len(laneXS[l]) {
			key[0] = laneXS[l][jj[l]]
		} else {
			size--
			key[0], lane[0] = key[size], lane[size]
		}
		siftDown(key, lane, size)
	}
	return Dist{xs: xs, ps: ps}
}

// siftUp restores the min-heap property after appending at index i.
func siftUp(key []float64, lane []int, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if key[parent] <= key[i] {
			return
		}
		key[i], key[parent] = key[parent], key[i]
		lane[i], lane[parent] = lane[parent], lane[i]
		i = parent
	}
}

// --- heap-based support compaction ---

// compactMerge merges adjacent support points (probability-weighted) until
// at most limit remain, picking the smallest interior gap first with ties
// broken toward the leftmost pair — the same merge sequence as a quadratic
// rescan, in O(n log n) via a lazily-invalidated pair heap over a doubly
// linked list of live support points.
//
// The extreme support points are pinned: a merge involving the first or
// last live point would move it to a probability-weighted average and pull
// Min()/Max() inward, silently weakening the worst-case bound (§4.1) that
// compaction must preserve. For limit >= 3 only interior pairs merge, so
// Min, Max, and the mean are all exact. For limit == 2 the interior mass
// is split between the two extremes so that the mean is preserved; for
// limit == 1 the single surviving point is the mean (there is nothing to
// pin with one point).
func compactMerge(xs, ps []float64, limit int) ([]float64, []float64) {
	n := len(xs)
	if limit < 1 {
		limit = 1
	}
	if n <= limit {
		return xs, ps
	}
	if limit <= 2 {
		return compactToExtremes(xs, ps, limit)
	}
	prev := borrowInts(n)
	next := borrowInts(n)
	ver := borrowInts(n) // -1 = merged away; else bumped when the value changes
	defer returnInts(prev)
	defer returnInts(next)
	defer returnInts(ver)
	for i := 0; i < n; i++ {
		prev[i], next[i], ver[i] = i-1, i+1, 0
	}
	next[n-1] = -1

	// Pair heap: candidate merge of node `left` with its successor. Entries
	// are validated lazily on pop against both endpoints' versions.
	type pair struct {
		gap         float64
		left, right int
		vLeft, vRig int
	}
	h := make([]pair, 0, 2*n)
	less := func(a, b pair) bool {
		return a.gap < b.gap || (a.gap == b.gap && a.left < b.left)
	}
	push := func(p pair) {
		h = append(h, p)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(h[i], h[parent]) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	pop := func() pair {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && less(h[l], h[small]) {
				small = l
			}
			if r < len(h) && less(h[r], h[small]) {
				small = r
			}
			if small == i {
				break
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
		return top
	}
	pushPair := func(left int) {
		r := next[left]
		if r == -1 {
			return
		}
		// Pin the extremes: never merge a pair that includes the first or
		// last live point (index 0 and n-1 — neither is ever merged away,
		// so the original indices identify them throughout).
		if left == 0 || r == n-1 {
			return
		}
		push(pair{gap: xs[r] - xs[left], left: left, right: r, vLeft: ver[left], vRig: ver[r]})
	}
	for i := 0; i < n-1; i++ {
		pushPair(i)
	}

	alive := n
	for alive > limit {
		e := pop()
		l, r := e.left, e.right
		if ver[l] != e.vLeft || ver[r] != e.vRig || next[l] != r {
			continue // stale: an endpoint moved or was merged away
		}
		p := ps[l] + ps[r]
		xs[l] = (xs[l]*ps[l] + xs[r]*ps[r]) / p
		ps[l] = p
		ver[l]++
		ver[r] = -1
		next[l] = next[r]
		if next[r] != -1 {
			prev[next[r]] = l
		}
		alive--
		if prev[l] != -1 {
			pushPair(prev[l])
		}
		pushPair(l)
	}

	outXS := make([]float64, 0, alive)
	outPS := make([]float64, 0, alive)
	for i := 0; i != -1; i = next[i] {
		outXS = append(outXS, xs[i])
		outPS = append(outPS, ps[i])
	}
	return outXS, outPS
}

// compactToExtremes collapses a distribution to limit (1 or 2) points
// without moving the bounds inward more than it must. With two points the
// mass sits on the original min and max, split so the mean is preserved
// exactly; with one point, the single survivor is the mean (a one-point
// distribution cannot preserve a range). Caller guarantees len(xs) > limit
// and sorted xs.
func compactToExtremes(xs, ps []float64, limit int) ([]float64, []float64) {
	total, mean := 0.0, 0.0
	for i, p := range ps {
		total += p
		mean += xs[i] * p
	}
	mean /= total
	if limit == 1 {
		return []float64{mean}, []float64{total}
	}
	lo, hi := xs[0], xs[len(xs)-1]
	if hi == lo {
		return []float64{lo}, []float64{total}
	}
	pHi := total * (mean - lo) / (hi - lo)
	if pHi < 0 {
		pHi = 0
	} else if pHi > total {
		pHi = total
	}
	return []float64{lo, hi}, []float64{total - pHi, pHi}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
