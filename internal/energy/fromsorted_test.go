package energy

import (
	"encoding/json"
	"testing"
)

// TestFromSortedBitIdenticalRoundTrip is the property the daemon's wire
// protocol rests on: Support/Probs → (JSON) → FromSorted reproduces the
// Dist bit for bit, including probabilities whose sum is not exactly 1.
func TestFromSortedBitIdenticalRoundTrip(t *testing.T) {
	dists := []Dist{
		Point(3.25),
		Bernoulli2(0.3, 7.5, 1.5),
		Categorical([]float64{1, 2, 3, 10}, []float64{0.1, 0.2, 0.3, 0.4}),
		Categorical([]float64{0.001, 0.002, 0.007}, []float64{1, 1, 1}), // thirds: sum != 1 exactly
	}
	for _, d := range dists {
		xs, ps := d.Support(), d.Probs()
		// Through JSON, as the wire does.
		var xs2, ps2 []float64
		for src, dst := range map[*[]float64]*[]float64{&xs: &xs2, &ps: &ps2} {
			b, err := json.Marshal(*src)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(b, dst); err != nil {
				t.Fatal(err)
			}
		}
		got, err := FromSorted(xs2, ps2)
		if err != nil {
			t.Fatalf("FromSorted(%v, %v): %v", xs2, ps2, err)
		}
		if len(got.xs) != len(d.xs) {
			t.Fatalf("support length %d, want %d", len(got.xs), len(d.xs))
		}
		for i := range d.xs {
			if got.xs[i] != d.xs[i] || got.ps[i] != d.ps[i] {
				t.Errorf("point %d: got (%v, %v), want (%v, %v) exactly",
					i, got.xs[i], got.ps[i], d.xs[i], d.ps[i])
			}
		}
	}
}

func TestFromSortedRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		xs, ps []float64
	}{
		{"mismatch", []float64{1, 2}, []float64{1}},
		{"empty", nil, nil},
		{"unsorted", []float64{2, 1}, []float64{0.5, 0.5}},
		{"duplicate", []float64{1, 1}, []float64{0.5, 0.5}},
		{"zero prob", []float64{1, 2}, []float64{0, 1}},
		{"negative prob", []float64{1, 2}, []float64{-0.5, 1.5}},
		{"bad sum", []float64{1, 2}, []float64{0.5, 0.2}},
	}
	for _, c := range cases {
		if _, err := FromSorted(c.xs, c.ps); err == nil {
			t.Errorf("%s: FromSorted accepted malformed input", c.name)
		}
	}
	if d, err := FromSorted([]float64{1, 2}, []float64{0.25, 0.75}); err != nil || d.Mean() != 1.75 {
		t.Errorf("valid input rejected: %v %v", d, err)
	}
}
