package energy

import (
	"math"
	"testing"
	"time"
)

func TestPowerEnergyRoundTrip(t *testing.T) {
	e := Watts(250).Energy(2 * time.Second)
	if e != 500 {
		t.Fatalf("250W for 2s = %v J, want 500", float64(e))
	}
	p := e.Power(2 * time.Second)
	if p != 250 {
		t.Fatalf("500J over 2s = %v W, want 250", float64(p))
	}
}

func TestPowerOverSeconds(t *testing.T) {
	if got := Watts(10).OverSeconds(0.5); got != 5 {
		t.Fatalf("10W over 0.5s = %v, want 5", float64(got))
	}
	if got := Watts(10).OverSeconds(0); got != 0 {
		t.Fatalf("10W over 0s = %v, want 0", float64(got))
	}
}

func TestPowerOfZeroDuration(t *testing.T) {
	if got := Joules(5).Power(0); got != 0 {
		t.Fatalf("Power over zero duration = %v, want 0", float64(got))
	}
	if got := Joules(5).Power(-time.Second); got != 0 {
		t.Fatalf("Power over negative duration = %v, want 0", float64(got))
	}
}

func TestJoulesString(t *testing.T) {
	cases := []struct {
		in   Joules
		want string
	}{
		{0, "0 J"},
		{3 * Nanojoule, "3 nJ"},
		{42 * Microjoule, "42 µJ"},
		{5 * Millijoule, "5 mJ"},
		{7, "7 J"},
		{2 * Kilojoule, "2 kJ"},
		{3 * Megajoule, "3 MJ"},
		{-5 * Millijoule, "-5 mJ"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Joules(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestWattsString(t *testing.T) {
	cases := []struct {
		in   Watts
		want string
	}{
		{0, "0 W"},
		{12 * Microwatt, "12 µW"},
		{250 * Milliwatt, "250 mW"},
		{450, "450 W"},
		{1.2 * Kilowatt, "1.2 kW"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Watts(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestJoulesAbs(t *testing.T) {
	if got := Joules(-3).Abs(); got != 3 {
		t.Fatalf("Abs(-3) = %v", float64(got))
	}
	if got := Joules(3).Abs(); got != 3 {
		t.Fatalf("Abs(3) = %v", float64(got))
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError(110,100) = %v, want 0.1", got)
	}
	if got := RelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError(90,100) = %v, want 0.1", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %v, want 0", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(1,0) = %v, want +Inf", got)
	}
	// Symmetric in sign of actual.
	if got := RelativeError(-110, -100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError(-110,-100) = %v, want 0.1", got)
	}
}
