package energy

import (
	"testing"
	"testing/quick"
)

func TestAbstractZeroValue(t *testing.T) {
	var a Abstract
	if a.String() != "0" {
		t.Fatalf("zero Abstract = %q", a.String())
	}
	b := a.Plus(Units(2, "relu"))
	if b.Coefficient("relu") != 2 {
		t.Fatalf("zero.Plus failed: %v", b)
	}
}

func TestAbstractPlusTimes(t *testing.T) {
	a := Units(8, "conv2d").Plus(Units(16, "mlp"))
	b := a.Times(2)
	if b.Coefficient("conv2d") != 16 || b.Coefficient("mlp") != 32 {
		t.Fatalf("Times(2): %v", b)
	}
	if got := a.Plus(Units(-8, "conv2d")); got.Coefficient("conv2d") != 0 {
		t.Fatalf("cancellation failed: %v", got)
	}
	if got := a.Times(0); len(got.UnitNames()) != 0 {
		t.Fatalf("Times(0) not zero: %v", got)
	}
}

func TestAbstractCancellationDropsUnit(t *testing.T) {
	a := Units(3, "relu").Plus(Units(-3, "relu"))
	if names := a.UnitNames(); len(names) != 0 {
		t.Fatalf("cancelled unit still present: %v", names)
	}
}

func TestAbstractRatio(t *testing.T) {
	two := Units(2, "relu")
	four := Units(4, "relu")
	r, ok := four.Ratio(two)
	if !ok || r != 2 {
		t.Fatalf("Ratio = %v, %v; want 2, true", r, ok)
	}
	// Proportional multi-unit amounts.
	a := Units(2, "conv").Plus(Units(6, "mlp"))
	b := Units(1, "conv").Plus(Units(3, "mlp"))
	if r, ok := a.Ratio(b); !ok || r != 2 {
		t.Fatalf("multi-unit Ratio = %v, %v", r, ok)
	}
	// Non-proportional.
	c := Units(2, "conv").Plus(Units(5, "mlp"))
	if _, ok := c.Ratio(b); ok {
		t.Fatal("non-proportional amounts reported proportional")
	}
	// Different units.
	if _, ok := Units(1, "conv").Ratio(Units(1, "mlp")); ok {
		t.Fatal("different units reported proportional")
	}
	// Zero denominator.
	var z Abstract
	if _, ok := a.Ratio(z); ok {
		t.Fatal("ratio to zero should fail")
	}
	// Zero numerator is proportional with r = 0.
	if r, ok := z.Ratio(b); !ok || r != 0 {
		t.Fatalf("zero numerator Ratio = %v, %v", r, ok)
	}
}

func TestConcretize(t *testing.T) {
	a := Units(8, "conv2d").Plus(Units(16, "mlp"))
	basis := Basis{"conv2d": 2 * Millijoule, "mlp": 1 * Millijoule}
	got, err := a.Concretize(basis)
	if err != nil {
		t.Fatal(err)
	}
	if want := 32 * Millijoule; (got - want).Abs() > 1e-12 {
		t.Fatalf("Concretize = %v, want %v", got, want)
	}
}

func TestConcretizeMissingUnit(t *testing.T) {
	a := Units(1, "relu")
	if _, err := a.Concretize(Basis{}); err == nil {
		t.Fatal("Concretize with missing unit should error")
	}
}

func TestAbstractString(t *testing.T) {
	a := Units(8, "conv2d").Plus(Units(16, "mlp"))
	if got := a.String(); got != "8 conv2d + 16 mlp" {
		t.Fatalf("String = %q", got)
	}
}

func TestQuickAbstractPlusCommutative(t *testing.T) {
	f := func(x, y float64) bool {
		a := Units(clampVal(x), "a").Plus(Units(clampVal(y), "b"))
		b := Units(clampVal(y), "a").Plus(Units(clampVal(x), "c"))
		l := a.Plus(b)
		r := b.Plus(a)
		for _, u := range []string{"a", "b", "c"} {
			if l.Coefficient(u) != r.Coefficient(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickConcretizeLinear(t *testing.T) {
	basis := Basis{"u": 3}
	f := func(x, y float64) bool {
		a, b := clampVal(x), clampVal(y)
		ja, err1 := Units(a, "u").Concretize(basis)
		jb, err2 := Units(b, "u").Concretize(basis)
		jsum, err3 := Units(a, "u").Plus(Units(b, "u")).Concretize(basis)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return (jsum - (ja + jb)).Abs() < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
