package energy

import (
	"math"
	"math/rand"
	"testing"
)

// --- reference implementations (the pre-kernel code paths) ---

// refAdd is the original build-the-product-then-sort convolution.
func refAdd(d, o Dist) Dist {
	if d.IsZero() {
		return o
	}
	if o.IsZero() {
		return d
	}
	values := make([]float64, 0, len(d.xs)*len(o.xs))
	probs := make([]float64, 0, len(d.xs)*len(o.xs))
	for i, x := range d.xs {
		for j, y := range o.xs {
			values = append(values, x+y)
			probs = append(probs, d.ps[i]*o.ps[j])
		}
	}
	return Categorical(values, probs).compact(MaxSupport)
}

// refMix is the original concatenate-then-sort mixture.
func refMix(weights []float64, dists []Dist) Dist {
	var values, probs []float64
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for k, dk := range dists {
		w := weights[k] / total
		if w == 0 {
			continue
		}
		if dk.IsZero() {
			values = append(values, 0)
			probs = append(probs, w)
			continue
		}
		for i, x := range dk.xs {
			values = append(values, x)
			probs = append(probs, w*dk.ps[i])
		}
	}
	return Categorical(values, probs).compact(MaxSupport)
}

// refCompact is the quadratic smallest-interior-gap rescan with the
// extreme support points pinned — the reference for compactMerge's policy.
func refCompact(d Dist, limit int) Dist {
	if len(d.xs) <= limit {
		return d
	}
	xs := append([]float64(nil), d.xs...)
	ps := append([]float64(nil), d.ps...)
	if limit <= 2 {
		// Mirror compactToExtremes: mean-preserving collapse onto the
		// extremes (limit 2) or the mean point (limit 1).
		total, mean := 0.0, 0.0
		for i, p := range ps {
			total += p
			mean += xs[i] * p
		}
		mean /= total
		if limit <= 1 {
			return Dist{xs: []float64{mean}, ps: []float64{total}}
		}
		lo, hi := xs[0], xs[len(xs)-1]
		if hi == lo {
			return Dist{xs: []float64{lo}, ps: []float64{total}}
		}
		pHi := total * (mean - lo) / (hi - lo)
		if pHi < 0 {
			pHi = 0
		} else if pHi > total {
			pHi = total
		}
		return Dist{xs: []float64{lo, hi}, ps: []float64{total - pHi, pHi}}
	}
	for len(xs) > limit {
		best := -1
		bestGap := math.Inf(1)
		// Interior pairs only: merging a pair that includes xs[0] or
		// xs[len-1] would pull Min/Max inward.
		for i := 1; i+2 < len(xs); i++ {
			if gap := xs[i+1] - xs[i]; gap < bestGap {
				bestGap = gap
				best = i
			}
		}
		p := ps[best] + ps[best+1]
		x := (xs[best]*ps[best] + xs[best+1]*ps[best+1]) / p
		xs[best], ps[best] = x, p
		xs = append(xs[:best+1], xs[best+2:]...)
		ps = append(ps[:best+1], ps[best+2:]...)
	}
	return Dist{xs: xs, ps: ps}
}

func randomDist(rng *rand.Rand, n int) Dist {
	values := make([]float64, n)
	probs := make([]float64, n)
	for i := range values {
		// Coarse grid so duplicate support points (and sums) actually occur.
		values[i] = float64(rng.Intn(50))
		probs[i] = rng.Float64() + 0.01
	}
	return Categorical(values, probs)
}

func TestConvolutionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := randomDist(rng, 1+rng.Intn(24))
		b := randomDist(rng, 1+rng.Intn(24))
		got := a.Add(b)
		want := refAdd(a, b)
		if !got.Equal(want, 1e-12) {
			t.Fatalf("trial %d: Add mismatch\n got %v\nwant %v", trial, got, want)
		}
		if math.Abs(got.TotalProb()-1) > 1e-9 {
			t.Fatalf("trial %d: total prob %v", trial, got.TotalProb())
		}
	}
}

func TestMixMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(5)
		weights := make([]float64, k)
		dists := make([]Dist, k)
		for i := range dists {
			weights[i] = rng.Float64()
			if rng.Intn(6) == 0 {
				weights[i] = 0 // exercise the zero-weight skip
			}
			if rng.Intn(6) == 0 {
				dists[i] = Dist{} // exercise the zero-component lane
			} else {
				dists[i] = randomDist(rng, 1+rng.Intn(16))
			}
		}
		// refMix/Mix both panic on all-zero weights; keep at least one.
		weights[0] += 0.25
		got := Mix(weights, dists)
		want := refMix(weights, dists)
		if !got.Equal(want, 1e-12) {
			t.Fatalf("trial %d: Mix mismatch\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestCompactMatchesReference: the heap-based compaction must reproduce
// the quadratic rescan's merge sequence exactly (same smallest interior
// gap, leftmost-tie, extremes-pinned policy), so outputs are bit-identical.
func TestCompactMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 20 + rng.Intn(120)
		values := make([]float64, n)
		probs := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64() * 100
			if rng.Intn(4) == 0 {
				values[i] = math.Floor(values[i]) // equal gaps to exercise ties
			}
			probs[i] = rng.Float64() + 0.01
		}
		d := Categorical(values, probs)
		limit := 1 + rng.Intn(16)
		got := d.compact(limit)
		want := refCompact(d, limit)
		if got.Len() > limit {
			t.Fatalf("trial %d: compact left %d > limit %d", trial, got.Len(), limit)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("trial %d (limit %d): compact mismatch\n got %v\nwant %v",
				trial, limit, got, want)
		}
	}
}

// TestCompactPinsExtremes: compaction must not move Min or Max inward —
// the §4.1 worst-case bound is only sound if WorstCase() survives support
// compaction exactly — and must keep the mean exact (the merge is a
// probability-weighted average, so this holds for interior merges too).
func TestCompactPinsExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 10 + rng.Intn(200)
		values := make([]float64, n)
		probs := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64() * 1000
			probs[i] = rng.Float64() + 0.001
		}
		d := Categorical(values, probs)
		for _, limit := range []int{2, 3, 4, 8, n / 2} {
			if limit < 2 || limit >= d.Len() {
				continue
			}
			c := d.compact(limit)
			if c.Len() > limit {
				t.Fatalf("trial %d limit %d: %d points left", trial, limit, c.Len())
			}
			if c.Min() != d.Min() || c.Max() != d.Max() {
				t.Fatalf("trial %d limit %d: bounds moved: [%v,%v] -> [%v,%v]",
					trial, limit, d.Min(), d.Max(), c.Min(), c.Max())
			}
			if rel := math.Abs(c.Mean()-d.Mean()) / math.Abs(d.Mean()); rel > 1e-9 {
				t.Fatalf("trial %d limit %d: mean drifted %v -> %v", trial, limit, d.Mean(), c.Mean())
			}
			if math.Abs(c.TotalProb()-d.TotalProb()) > 1e-9 {
				t.Fatalf("trial %d limit %d: mass changed %v -> %v",
					trial, limit, d.TotalProb(), c.TotalProb())
			}
		}
	}
	// Chained arithmetic keeps bounds exact end to end: the worst case of a
	// sum is the sum of worst cases even after repeated MaxSupport capping.
	a := randomWide(rng, 300)
	b := randomWide(rng, 300)
	s := a.Add(b)
	if s.Max() != a.Max()+b.Max() || s.Min() != a.Min()+b.Min() {
		t.Fatalf("convolution bounds: got [%v,%v], want [%v,%v]",
			s.Min(), s.Max(), a.Min()+b.Min(), a.Max()+b.Max())
	}
}

// randomWide builds an n-point distribution on an irrational grid, wide
// enough that Add must compact.
func randomWide(rng *rand.Rand, n int) Dist {
	values := make([]float64, n)
	probs := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64() * 1e4
		probs[i] = rng.Float64() + 0.01
	}
	return Categorical(values, probs)
}

func TestConvolutionLargeSupportCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Two wide irrational-grid dists: the raw product has ~MaxSupport²
	// points and must be compacted down.
	mk := func() Dist {
		values := make([]float64, MaxSupport)
		probs := make([]float64, MaxSupport)
		for i := range values {
			values[i] = rng.Float64() * 1000
			probs[i] = 1
		}
		return Categorical(values, probs)
	}
	a, b := mk(), mk()
	s := a.Add(b)
	if s.Len() > MaxSupport {
		t.Fatalf("support %d > MaxSupport", s.Len())
	}
	wantMean := a.Mean() + b.Mean()
	if math.Abs(s.Mean()-wantMean) > 1e-6*math.Abs(wantMean) {
		t.Fatalf("mean drifted: %v vs %v", s.Mean(), wantMean)
	}
	if math.Abs(s.TotalProb()-1) > 1e-9 {
		t.Fatalf("total prob %v", s.TotalProb())
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	a := BorrowScratch(100)
	if len(a) != 100 {
		t.Fatalf("len %d", len(a))
	}
	for i := range a {
		a[i] = float64(i)
	}
	ReturnScratch(a)
	b := BorrowScratch(10)
	if len(b) != 10 {
		t.Fatalf("len %d", len(b))
	}
	ReturnScratch(b)
	// Growing borrow after a small one must still size correctly.
	c := BorrowScratch(5000)
	if len(c) != 5000 {
		t.Fatalf("len %d", len(c))
	}
	ReturnScratch(c)
}
