// Package energy provides the foundation types for the energy-clarity
// framework: physical units (Joules, Watts), discrete probability
// distributions over energy values, and abstract energy units.
//
// Energy interfaces ("The Case for Energy Clarity", HotOS'25, §3) return
// energy either in physical units or in abstract units ("2 ReLUs' worth"),
// and — because energy-critical variables (ECVs) are random variables —
// the return value of an interface is in general a probability
// distribution. This package provides all three notions.
package energy

import (
	"fmt"
	"math"
	"time"
)

// Joules is an amount of energy in joules. Negative values are permitted
// in intermediate arithmetic (e.g. when computing deltas) but a module's
// energy consumption is always reported as a non-negative value.
type Joules float64

// Watts is power: energy per unit of time.
type Watts float64

// Common multiples, for readable literals and output.
const (
	Nanojoule  Joules = 1e-9
	Microjoule Joules = 1e-6
	Millijoule Joules = 1e-3
	Joule      Joules = 1
	Kilojoule  Joules = 1e3
	Megajoule  Joules = 1e6

	Microwatt Watts = 1e-6
	Milliwatt Watts = 1e-3
	Watt      Watts = 1
	Kilowatt  Watts = 1e3
)

// Energy returns the energy consumed by drawing power p for duration d.
func (p Watts) Energy(d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// OverSeconds returns the energy consumed by drawing power p for s seconds.
// It is a convenience for simulator code that tracks time as float seconds.
func (p Watts) OverSeconds(s float64) Joules {
	return Joules(float64(p) * s)
}

// Power returns the average power of consuming e over duration d.
// It returns 0 if d is not positive.
func (e Joules) Power(d time.Duration) Watts {
	sec := d.Seconds()
	if sec <= 0 {
		return 0
	}
	return Watts(float64(e) / sec)
}

// Abs returns the absolute value of e.
func (e Joules) Abs() Joules {
	return Joules(math.Abs(float64(e)))
}

// String formats the energy with an SI prefix chosen by magnitude.
func (e Joules) String() string {
	v := float64(e)
	a := math.Abs(v)
	switch {
	case a == 0:
		return "0 J"
	case a < 1e-6:
		return fmt.Sprintf("%.3g nJ", v*1e9)
	case a < 1e-3:
		return fmt.Sprintf("%.3g µJ", v*1e6)
	case a < 1:
		return fmt.Sprintf("%.3g mJ", v*1e3)
	case a < 1e3:
		return fmt.Sprintf("%.3g J", v)
	case a < 1e6:
		return fmt.Sprintf("%.3g kJ", v*1e-3)
	default:
		return fmt.Sprintf("%.3g MJ", v*1e-6)
	}
}

// String formats the power with an SI prefix chosen by magnitude.
func (p Watts) String() string {
	v := float64(p)
	a := math.Abs(v)
	switch {
	case a == 0:
		return "0 W"
	case a < 1e-3:
		return fmt.Sprintf("%.3g µW", v*1e6)
	case a < 1:
		return fmt.Sprintf("%.3g mW", v*1e3)
	case a < 1e3:
		return fmt.Sprintf("%.3g W", v)
	default:
		return fmt.Sprintf("%.3g kW", v*1e-3)
	}
}

// RelativeError returns |predicted-actual| / |actual|. It reports the
// metric used throughout the paper's evaluation (Table 1). If actual is
// zero, it returns 0 when predicted is also zero and +Inf otherwise.
func RelativeError(predicted, actual Joules) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(predicted-actual)) / math.Abs(float64(actual))
}
