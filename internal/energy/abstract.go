package energy

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Abstract is an energy amount expressed as a linear combination of named
// abstract units — e.g. "8 conv2d + 16 mlp" (§3: "energy for a 2D
// convolution", "2 ReLUs' worth"). Abstract amounts support exact relative
// comparison between expressions over the same units without knowing how
// many joules each unit costs, and can be concretized to Joules with a
// Basis.
//
// The zero value is the zero amount and is ready to use.
type Abstract struct {
	units map[string]float64
}

// Units returns Abstract representing n of the named unit.
func Units(n float64, unit string) Abstract {
	a := Abstract{units: map[string]float64{}}
	if n != 0 {
		a.units[unit] = n
	}
	return a
}

// Plus returns a + b.
func (a Abstract) Plus(b Abstract) Abstract {
	out := Abstract{units: map[string]float64{}}
	for u, n := range a.units {
		out.units[u] = n
	}
	for u, n := range b.units {
		out.units[u] += n
		if out.units[u] == 0 {
			delete(out.units, u)
		}
	}
	return out
}

// Times returns k * a.
func (a Abstract) Times(k float64) Abstract {
	out := Abstract{units: map[string]float64{}}
	if k == 0 {
		return out
	}
	for u, n := range a.units {
		out.units[u] = k * n
	}
	return out
}

// Coefficient returns the coefficient of the named unit (0 if absent).
func (a Abstract) Coefficient(unit string) float64 { return a.units[unit] }

// UnitNames returns the units with non-zero coefficient, sorted.
func (a Abstract) UnitNames() []string {
	names := make([]string, 0, len(a.units))
	for u := range a.units {
		names = append(names, u)
	}
	sort.Strings(names)
	return names
}

// Ratio returns the scalar r such that a == r*b, if the two amounts are
// proportional over the same units ("the latter consumes twice as much as
// the former, regardless of how many Joules that is"). ok is false if the
// amounts are not proportional or b is zero.
func (a Abstract) Ratio(b Abstract) (r float64, ok bool) {
	if len(b.units) == 0 {
		return 0, false
	}
	if len(a.units) == 0 {
		return 0, true
	}
	if len(a.units) != len(b.units) {
		return 0, false
	}
	first := true
	for u, bn := range b.units {
		an, present := a.units[u]
		if !present || bn == 0 {
			return 0, false
		}
		cur := an / bn
		if first {
			r, first = cur, false
			continue
		}
		if math.Abs(cur-r) > 1e-9*math.Max(math.Abs(cur), math.Abs(r)) {
			return 0, false
		}
	}
	return r, true
}

// Basis maps abstract unit names to concrete per-unit energies. A hardware
// energy interface is, at bottom, a Basis: it assigns joule costs to the
// abstract operations the layers above count.
type Basis map[string]Joules

// Concretize converts a to Joules using basis b. It returns an error
// naming the first (alphabetically) unit missing from the basis.
func (a Abstract) Concretize(b Basis) (Joules, error) {
	var total Joules
	for _, u := range a.UnitNames() {
		cost, present := b[u]
		if !present {
			return 0, fmt.Errorf("energy: no basis entry for abstract unit %q", u)
		}
		total += Joules(a.units[u]) * cost
	}
	return total, nil
}

// String renders the amount like "8 conv2d + 16 mlp"; the zero amount
// renders as "0".
func (a Abstract) String() string {
	names := a.UnitNames()
	if len(names) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, u := range names {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%.6g %s", a.units[u], u)
	}
	return b.String()
}
