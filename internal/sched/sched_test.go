package sched

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/cpusim"
	"energyclarity/internal/energy"
	"energyclarity/internal/trace"
)

func bimodalTasks(n int, jitter float64) []*Task {
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		// Peak demand needs a big core at a high level; trough fits a
		// little core at its lowest level. Phases are staggered.
		b := trace.NewBimodal(
			55e6, // peak cycles per 10ms quantum: needs ~big@2.4GHz
			1.5e6,
			8, 8, i*4, jitter, int64(100+i),
		)
		tasks[i] = &Task{
			Name:   "transcode",
			Demand: b.Demand,
			Iface:  TaskInterface("transcode", b.Base),
		}
	}
	return tasks
}

func TestTaskInterfaceDemand(t *testing.T) {
	b := trace.NewBimodal(100, 10, 2, 2, 0, 0, 1)
	iface := TaskInterface("x", b.Base)
	d, err := iface.ExpectedJoules("demand_cycles", core.Num(0))
	if err != nil {
		t.Fatal(err)
	}
	if float64(d) != 100 {
		t.Fatalf("demand(0) = %v", d)
	}
	if _, err := iface.ExpectedJoules("demand_cycles", core.Num(-1)); err == nil {
		t.Fatal("negative quantum accepted")
	}
	if _, err := iface.ExpectedJoules("demand_cycles", core.Num(1.5)); err == nil {
		t.Fatal("fractional quantum accepted")
	}
	j, err := iface.ExpectedJoules("run", core.Num(0), core.Num(2e-9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(j)-100*2e-9) > 1e-18 {
		t.Fatalf("run energy = %v", j)
	}
}

func TestChoosePlacementPrefersLittleForLightLoad(t *testing.T) {
	chip := cpusim.BigLITTLE()
	p := choosePlacement(chip, 1e6) // 1M cycles in 10ms: trivial
	if p.CoreType != "little" || p.Level != 0 {
		t.Fatalf("light load placed on %s@%d", p.CoreType, p.Level)
	}
}

func TestChoosePlacementEscalatesForHeavyLoad(t *testing.T) {
	chip := cpusim.BigLITTLE()
	// 55M cycles in 10ms needs capacity 5.5e9 c/s: only big@2.4 (7.2e9).
	p := choosePlacement(chip, 55e6)
	if p.CoreType != "big" || p.Level != 2 {
		t.Fatalf("heavy load placed on %s@%d", p.CoreType, p.Level)
	}
}

func TestChoosePlacementInfeasibleFallsBackToMaxCapacity(t *testing.T) {
	chip := cpusim.BigLITTLE()
	p := choosePlacement(chip, 1e12)
	if p.CoreType != "big" || p.Level != len(cpusim.BigCore().Freqs)-1 {
		t.Fatalf("infeasible load placed on %s@%d", p.CoreType, p.Level)
	}
}

func TestRunValidation(t *testing.T) {
	chip := cpusim.BigLITTLE()
	s := NewInterfaceAware(chip, 0)
	if _, err := Run(chip, s, nil, 10); err == nil {
		t.Fatal("no tasks accepted")
	}
	if _, err := Run(chip, s, bimodalTasks(9, 0), 10); err == nil {
		t.Fatal("more tasks than cores accepted")
	}
}

func TestInterfaceAwareMeetsQoSOnCleanBimodal(t *testing.T) {
	tasks := bimodalTasks(4, 0)
	chip := cpusim.BigLITTLE()
	res, err := Run(chip, NewInterfaceAware(chip, 0.05), tasks, 320)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnmetFraction() > 0.001 {
		t.Fatalf("interface-aware unmet fraction %v", res.UnmetFraction())
	}
}

func TestBaselineChasesBimodalPhases(t *testing.T) {
	// The EWMA proxy must either miss work or burn more energy than the
	// interface-aware scheduler — on clean bimodal tasks it does both.
	quanta := 320
	tasksA := bimodalTasks(4, 0)
	chipA := cpusim.BigLITTLE()
	base, err := Run(chipA, NewEASBaseline(chipA, len(tasksA), 0.3), tasksA, quanta)
	if err != nil {
		t.Fatal(err)
	}
	tasksB := bimodalTasks(4, 0)
	chipB := cpusim.BigLITTLE()
	aware, err := Run(chipB, NewInterfaceAware(chipB, 0.05), tasksB, quanta)
	if err != nil {
		t.Fatal(err)
	}
	if base.UnmetFraction() <= aware.UnmetFraction() {
		t.Fatalf("baseline QoS (%v) not worse than interface-aware (%v)",
			base.UnmetFraction(), aware.UnmetFraction())
	}
	if base.DemandTotal != aware.DemandTotal {
		t.Fatalf("runs saw different demand: %v vs %v", base.DemandTotal, aware.DemandTotal)
	}
}

// TestChoosePlacementDeterministicUnderTies is the regression test for the
// map-iteration bug: with two core types of identical capacity and power,
// both the equal-capacity fallback and the equal-energy feasible tie-break
// used to depend on Go's randomized map order. 50 repetitions must agree.
func TestChoosePlacementDeterministicUnderTies(t *testing.T) {
	twin := func(name string) cpusim.CoreSpec {
		return cpusim.CoreSpec{
			Type: name,
			IPC:  2.0,
			Idle: 0.1,
			Freqs: []cpusim.FreqLevel{
				{GHz: 1.0, ActiveW: 1.0},
				{GHz: 2.0, ActiveW: 3.0},
			},
		}
	}
	chip, err := cpusim.NewChip(
		[]cpusim.CoreSpec{twin("alpha"), twin("beta"), twin("gamma")}, 0.010, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, demand := range []float64{1e6, 3e7, 1e12} { // feasible tie, mid, fallback tie
		first := choosePlacement(chip, demand)
		for i := 0; i < 50; i++ {
			if p := choosePlacement(chip, demand); p != first {
				t.Fatalf("demand %v: placement run %d = %+v, first run = %+v", demand, i, p, first)
			}
		}
		// Sorted iteration means ties resolve to the lexicographically
		// smallest core type, never to whichever the map yielded first.
		if first.CoreType != "alpha" {
			t.Fatalf("demand %v: tie broke to %q, want alpha", demand, first.CoreType)
		}
	}
}

// TestPlanSurfacesInterfaceError pins the error path: a task whose energy
// interface fails must abort the run with a descriptive error instead of
// being silently placed with demand = 0 (which used to masquerade as a
// QoS collapse).
func TestPlanSurfacesInterfaceError(t *testing.T) {
	bad := core.New("task_broken").MustMethod(core.Method{
		Name: "demand_cycles", Params: []string{"q"},
		Body: func(c *core.Call) energy.Joules {
			core.Fail(fmt.Errorf("sensor driver exploded"))
			return 0
		},
	})
	tasks := []*Task{{Name: "broken", Demand: func(int) float64 { return 1e6 }, Iface: bad}}
	chip := cpusim.BigLITTLE()
	s := NewInterfaceAware(chip, 0)
	if _, err := s.Plan(0, tasks); err == nil {
		t.Fatal("Plan swallowed the interface failure")
	} else if !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "sensor driver") {
		t.Fatalf("error does not identify task or cause: %v", err)
	}
	if _, err := Run(chip, s, tasks, 4); err == nil {
		t.Fatal("Run completed despite a failing demand interface")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() RunResult {
		tasks := bimodalTasks(4, 0.1)
		chip := cpusim.BigLITTLE()
		res, err := Run(chip, NewInterfaceAware(chip, 0.1), tasks, 100)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestObserveUpdatesEWMA(t *testing.T) {
	chip := cpusim.BigLITTLE()
	s := NewEASBaseline(chip, 1, 0.5)
	s.Observe(0, []float64{100}, []bool{false})
	if s.est[0] != 100 {
		t.Fatalf("first observation: est = %v", s.est[0])
	}
	s.Observe(1, []float64{200}, []bool{false})
	if s.est[0] != 150 {
		t.Fatalf("EWMA: est = %v, want 150", s.est[0])
	}
}

func TestObserveEscalatesOnSaturation(t *testing.T) {
	chip := cpusim.BigLITTLE()
	s := NewEASBaseline(chip, 1, 0.5)
	s.Observe(0, []float64{100}, []bool{false})
	s.Observe(1, []float64{120}, []bool{true})
	if s.est[0] != 240 {
		t.Fatalf("saturated estimate = %v, want doubled 240", s.est[0])
	}
	// Escalation never lowers the estimate.
	s.Observe(2, []float64{10}, []bool{true})
	if s.est[0] < 240 {
		t.Fatalf("escalation lowered estimate to %v", s.est[0])
	}
}

// TestObserveSaturationEscalationTable pins the misfit-escalation rule of
// EASBaseline.Observe case by case: saturated observations double (never
// lowering the standing estimate), unsaturated ones EWMA-blend, and the
// first observation initializes directly.
func TestObserveSaturationEscalationTable(t *testing.T) {
	const alpha = 0.25
	cases := []struct {
		name      string
		est       float64
		init      bool
		used      float64
		saturated bool
		want      float64
	}{
		{"first observation initializes", 0, false, 80, false, 80},
		{"first observation saturated doubles", 0, false, 80, true, 160},
		{"ewma blends", 100, true, 200, false, alpha*200 + (1-alpha)*100},
		{"saturation doubles used", 100, true, 150, true, 300},
		{"saturation keeps higher standing estimate", 500, true, 100, true, 500},
		{"saturation exactly at half keeps estimate", 400, true, 200, true, 400},
	}
	for _, tc := range cases {
		chip := cpusim.BigLITTLE()
		s := NewEASBaseline(chip, 1, alpha)
		s.est[0], s.init[0] = tc.est, tc.init
		s.Observe(0, []float64{tc.used}, []bool{tc.saturated})
		if s.est[0] != tc.want {
			t.Errorf("%s: est = %v, want %v", tc.name, s.est[0], tc.want)
		}
		if !s.init[0] {
			t.Errorf("%s: estimate not marked initialized", tc.name)
		}
	}
}

// TestRunGoldenE2 pins the E2 headline numbers end to end: the exact
// bimodal task set of internal/experiments.E2EASBimodal (jitter 0.05,
// seeds 100..103), 640 quanta, EWMA alpha 0.3 vs interface margin 0.10.
// Everything in the pipeline is seeded and placement is now fully
// deterministic, so these digits must reproduce exactly; a diff here
// means the scheduling or simulation semantics changed, not noise.
func TestRunGoldenE2(t *testing.T) {
	const quanta = 640
	chipA := cpusim.BigLITTLE()
	base, err := Run(chipA, NewEASBaseline(chipA, 4, 0.3), bimodalTasks(4, 0.05), quanta)
	if err != nil {
		t.Fatal(err)
	}
	chipB := cpusim.BigLITTLE()
	aware, err := Run(chipB, NewInterfaceAware(chipB, 0.10), bimodalTasks(4, 0.05), quanta)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(base.TotalEnergy); got != 69.414898794609826 {
		t.Errorf("baseline energy = %.17g, want 69.414898794609826", got)
	}
	if got := base.UnmetCycles; got != 57058407800.37944 {
		t.Errorf("baseline unmet cycles = %.17g, want 57058407800.37944", got)
	}
	if got := float64(aware.TotalEnergy); got != 74.244098078622457 {
		t.Errorf("interface-aware energy = %.17g, want 74.244098078622457", got)
	}
	if aware.UnmetCycles != 0 {
		t.Errorf("interface-aware unmet cycles = %v, want 0", aware.UnmetCycles)
	}
	if base.DemandTotal != 72417597729.281494 || aware.DemandTotal != base.DemandTotal {
		t.Errorf("demand totals: base %.17g aware %.17g, want both 72417597729.281494",
			base.DemandTotal, aware.DemandTotal)
	}
}

// --- placer (E3 scenario) ---

func e3Apps() []App {
	return []App{
		{Name: "analytics", CPURequest: 0.6, CPUCyclesPerSec: 3e10, MemAccPerSec: 1.8e9, Seconds: 600},
		{Name: "kvstore", CPURequest: 0.55, CPUCyclesPerSec: 1.2e10, MemAccPerSec: 6e9, Seconds: 600},
		{Name: "batch", CPURequest: 0.9, CPUCyclesPerSec: 8e10, MemAccPerSec: 0.6e9, Seconds: 600},
	}
}

func TestInterfacePlacerBeatsRequestPlacer(t *testing.T) {
	nodes := []NodeSpec{ComputeNode(), BigMemoryNode()}
	apps := e3Apps()
	byReq := PlaceByRequest(apps, nodes)
	byIface, err := PlaceByInterface(apps, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if byIface.Energy >= byReq.Energy {
		t.Fatalf("interface placement (%v) not cheaper than request placement (%v)",
			byIface.Energy, byReq.Energy)
	}
	// The memory-intensive kvstore must land on the big-memory node under
	// the interface placer; the request placer sends it to compute.
	if byIface.Nodes[1] != "bigmem" {
		t.Fatalf("kvstore placed on %s by interface placer", byIface.Nodes[1])
	}
	if byReq.Nodes[1] != "compute" {
		t.Fatalf("kvstore placed on %s by request placer", byReq.Nodes[1])
	}
}

// TestInfeasibleFallbackAvoidsWorstNode is the regression test for the
// blind nodes[0] fallback: when no node fits, the placer must pick the
// node the app overloads the least (then the cheapest), not whatever
// happens to be listed first.
func TestInfeasibleFallbackAvoidsWorstNode(t *testing.T) {
	// Node 0 is a tiny edge box the app would stretch 60x; node 1 nearly
	// fits (1.2x); node 2 matches node 1's stretch but costs more energy.
	nodes := []NodeSpec{
		{Name: "edge", CPUCyclesPerSec: 1e9, MemAccPerSec: 1e8,
			CPUEnergyPerCycle: 0.5e-9, MemEnergyPerAcc: 10e-9, StaticPower: 8},
		{Name: "rack", CPUCyclesPerSec: 5e10, MemAccPerSec: 4e9,
			CPUEnergyPerCycle: 1.0e-9, MemEnergyPerAcc: 20e-9, StaticPower: 90},
		{Name: "rack-hot", CPUCyclesPerSec: 5e10, MemAccPerSec: 4e9,
			CPUEnergyPerCycle: 2.0e-9, MemEnergyPerAcc: 40e-9, StaticPower: 180},
	}
	apps := []App{{
		Name: "monster", CPURequest: 1.0,
		CPUCyclesPerSec: 6e10, MemAccPerSec: 1e9, Seconds: 100,
	}}
	res, err := PlaceByInterface(apps, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0] != "rack" {
		t.Fatalf("infeasible app placed on %s, want rack (minimal stretch, then cheapest)", res.Nodes[0])
	}
	// Feasible placement is unaffected by the fallback logic.
	small := []App{{Name: "small", CPUCyclesPerSec: 5e8, MemAccPerSec: 5e7, Seconds: 100}}
	res, err = PlaceByInterface(small, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0] != "edge" {
		t.Fatalf("feasible app placed on %s, want edge", res.Nodes[0])
	}
}

func TestNodeInterfaceEnergy(t *testing.T) {
	iface := NodeInterface(ComputeNode())
	j, err := iface.ExpectedJoules("run", core.Num(1e9), core.Num(1e6), core.Num(10))
	if err != nil {
		t.Fatal(err)
	}
	spec := ComputeNode()
	want := float64(spec.CPUEnergyPerCycle)*1e10 + float64(spec.MemEnergyPerAcc)*1e7 +
		float64(spec.StaticPower)*10
	if rel := (float64(j) - want) / want; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("node energy %v, want %v", j, want)
	}
	if _, err := iface.ExpectedJoules("run", core.Num(-1), core.Num(0), core.Num(1)); err == nil {
		t.Fatal("negative intensity accepted")
	}
}

func TestTrueRunEnergyStretchesUnderOverload(t *testing.T) {
	node := ComputeNode()
	app := App{Name: "x", CPUCyclesPerSec: node.CPUCyclesPerSec * 2, Seconds: 10}
	over := trueRunEnergy(app, node)
	app2 := App{Name: "x", CPUCyclesPerSec: node.CPUCyclesPerSec, Seconds: 10}
	app2.CPUCyclesPerSec = node.CPUCyclesPerSec
	fit := trueRunEnergy(App{Name: "y", CPUCyclesPerSec: node.CPUCyclesPerSec / 2, Seconds: 10}, node)
	if over <= fit {
		t.Fatal("overloaded run should cost more (static stretch)")
	}
}

func TestAppInterfaceRebindChangesPrediction(t *testing.T) {
	app := e3Apps()[1] // kvstore
	onCompute, err := AppInterface(app, NodeInterface(ComputeNode()))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := onCompute.ExpectedJoules("run")
	if err != nil {
		t.Fatal(err)
	}
	onBigmem, err := onCompute.Rebind("node", NodeInterface(BigMemoryNode()))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := onBigmem.ExpectedJoules("run")
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= e1 {
		t.Fatalf("kvstore on bigmem (%v) should predict cheaper than compute (%v)", e2, e1)
	}
}
