package sched

import (
	"math"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/cpusim"
	"energyclarity/internal/trace"
)

func bimodalTasks(n int, jitter float64) []*Task {
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		// Peak demand needs a big core at a high level; trough fits a
		// little core at its lowest level. Phases are staggered.
		b := trace.NewBimodal(
			55e6, // peak cycles per 10ms quantum: needs ~big@2.4GHz
			1.5e6,
			8, 8, i*4, jitter, int64(100+i),
		)
		tasks[i] = &Task{
			Name:   "transcode",
			Demand: b.Demand,
			Iface:  TaskInterface("transcode", b.Base),
		}
	}
	return tasks
}

func TestTaskInterfaceDemand(t *testing.T) {
	b := trace.NewBimodal(100, 10, 2, 2, 0, 0, 1)
	iface := TaskInterface("x", b.Base)
	d, err := iface.ExpectedJoules("demand_cycles", core.Num(0))
	if err != nil {
		t.Fatal(err)
	}
	if float64(d) != 100 {
		t.Fatalf("demand(0) = %v", d)
	}
	if _, err := iface.ExpectedJoules("demand_cycles", core.Num(-1)); err == nil {
		t.Fatal("negative quantum accepted")
	}
	if _, err := iface.ExpectedJoules("demand_cycles", core.Num(1.5)); err == nil {
		t.Fatal("fractional quantum accepted")
	}
	j, err := iface.ExpectedJoules("run", core.Num(0), core.Num(2e-9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(j)-100*2e-9) > 1e-18 {
		t.Fatalf("run energy = %v", j)
	}
}

func TestChoosePlacementPrefersLittleForLightLoad(t *testing.T) {
	chip := cpusim.BigLITTLE()
	p := choosePlacement(chip, 1e6) // 1M cycles in 10ms: trivial
	if p.CoreType != "little" || p.Level != 0 {
		t.Fatalf("light load placed on %s@%d", p.CoreType, p.Level)
	}
}

func TestChoosePlacementEscalatesForHeavyLoad(t *testing.T) {
	chip := cpusim.BigLITTLE()
	// 55M cycles in 10ms needs capacity 5.5e9 c/s: only big@2.4 (7.2e9).
	p := choosePlacement(chip, 55e6)
	if p.CoreType != "big" || p.Level != 2 {
		t.Fatalf("heavy load placed on %s@%d", p.CoreType, p.Level)
	}
}

func TestChoosePlacementInfeasibleFallsBackToMaxCapacity(t *testing.T) {
	chip := cpusim.BigLITTLE()
	p := choosePlacement(chip, 1e12)
	if p.CoreType != "big" || p.Level != len(cpusim.BigCore().Freqs)-1 {
		t.Fatalf("infeasible load placed on %s@%d", p.CoreType, p.Level)
	}
}

func TestRunValidation(t *testing.T) {
	chip := cpusim.BigLITTLE()
	s := NewInterfaceAware(chip, 0)
	if _, err := Run(chip, s, nil, 10); err == nil {
		t.Fatal("no tasks accepted")
	}
	if _, err := Run(chip, s, bimodalTasks(9, 0), 10); err == nil {
		t.Fatal("more tasks than cores accepted")
	}
}

func TestInterfaceAwareMeetsQoSOnCleanBimodal(t *testing.T) {
	tasks := bimodalTasks(4, 0)
	chip := cpusim.BigLITTLE()
	res, err := Run(chip, NewInterfaceAware(chip, 0.05), tasks, 320)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnmetFraction() > 0.001 {
		t.Fatalf("interface-aware unmet fraction %v", res.UnmetFraction())
	}
}

func TestBaselineChasesBimodalPhases(t *testing.T) {
	// The EWMA proxy must either miss work or burn more energy than the
	// interface-aware scheduler — on clean bimodal tasks it does both.
	quanta := 320
	tasksA := bimodalTasks(4, 0)
	chipA := cpusim.BigLITTLE()
	base, err := Run(chipA, NewEASBaseline(chipA, len(tasksA), 0.3), tasksA, quanta)
	if err != nil {
		t.Fatal(err)
	}
	tasksB := bimodalTasks(4, 0)
	chipB := cpusim.BigLITTLE()
	aware, err := Run(chipB, NewInterfaceAware(chipB, 0.05), tasksB, quanta)
	if err != nil {
		t.Fatal(err)
	}
	if base.UnmetFraction() <= aware.UnmetFraction() {
		t.Fatalf("baseline QoS (%v) not worse than interface-aware (%v)",
			base.UnmetFraction(), aware.UnmetFraction())
	}
	if base.DemandTotal != aware.DemandTotal {
		t.Fatalf("runs saw different demand: %v vs %v", base.DemandTotal, aware.DemandTotal)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() RunResult {
		tasks := bimodalTasks(4, 0.1)
		chip := cpusim.BigLITTLE()
		res, err := Run(chip, NewInterfaceAware(chip, 0.1), tasks, 100)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestObserveUpdatesEWMA(t *testing.T) {
	chip := cpusim.BigLITTLE()
	s := NewEASBaseline(chip, 1, 0.5)
	s.Observe(0, []float64{100}, []bool{false})
	if s.est[0] != 100 {
		t.Fatalf("first observation: est = %v", s.est[0])
	}
	s.Observe(1, []float64{200}, []bool{false})
	if s.est[0] != 150 {
		t.Fatalf("EWMA: est = %v, want 150", s.est[0])
	}
}

func TestObserveEscalatesOnSaturation(t *testing.T) {
	chip := cpusim.BigLITTLE()
	s := NewEASBaseline(chip, 1, 0.5)
	s.Observe(0, []float64{100}, []bool{false})
	s.Observe(1, []float64{120}, []bool{true})
	if s.est[0] != 240 {
		t.Fatalf("saturated estimate = %v, want doubled 240", s.est[0])
	}
	// Escalation never lowers the estimate.
	s.Observe(2, []float64{10}, []bool{true})
	if s.est[0] < 240 {
		t.Fatalf("escalation lowered estimate to %v", s.est[0])
	}
}

// --- placer (E3 scenario) ---

func e3Apps() []App {
	return []App{
		{Name: "analytics", CPURequest: 0.6, CPUCyclesPerSec: 3e10, MemAccPerSec: 1.8e9, Seconds: 600},
		{Name: "kvstore", CPURequest: 0.55, CPUCyclesPerSec: 1.2e10, MemAccPerSec: 6e9, Seconds: 600},
		{Name: "batch", CPURequest: 0.9, CPUCyclesPerSec: 8e10, MemAccPerSec: 0.6e9, Seconds: 600},
	}
}

func TestInterfacePlacerBeatsRequestPlacer(t *testing.T) {
	nodes := []NodeSpec{ComputeNode(), BigMemoryNode()}
	apps := e3Apps()
	byReq := PlaceByRequest(apps, nodes)
	byIface, err := PlaceByInterface(apps, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if byIface.Energy >= byReq.Energy {
		t.Fatalf("interface placement (%v) not cheaper than request placement (%v)",
			byIface.Energy, byReq.Energy)
	}
	// The memory-intensive kvstore must land on the big-memory node under
	// the interface placer; the request placer sends it to compute.
	if byIface.Nodes[1] != "bigmem" {
		t.Fatalf("kvstore placed on %s by interface placer", byIface.Nodes[1])
	}
	if byReq.Nodes[1] != "compute" {
		t.Fatalf("kvstore placed on %s by request placer", byReq.Nodes[1])
	}
}

func TestNodeInterfaceEnergy(t *testing.T) {
	iface := NodeInterface(ComputeNode())
	j, err := iface.ExpectedJoules("run", core.Num(1e9), core.Num(1e6), core.Num(10))
	if err != nil {
		t.Fatal(err)
	}
	spec := ComputeNode()
	want := float64(spec.CPUEnergyPerCycle)*1e10 + float64(spec.MemEnergyPerAcc)*1e7 +
		float64(spec.StaticPower)*10
	if rel := (float64(j) - want) / want; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("node energy %v, want %v", j, want)
	}
	if _, err := iface.ExpectedJoules("run", core.Num(-1), core.Num(0), core.Num(1)); err == nil {
		t.Fatal("negative intensity accepted")
	}
}

func TestTrueRunEnergyStretchesUnderOverload(t *testing.T) {
	node := ComputeNode()
	app := App{Name: "x", CPUCyclesPerSec: node.CPUCyclesPerSec * 2, Seconds: 10}
	over := trueRunEnergy(app, node)
	app2 := App{Name: "x", CPUCyclesPerSec: node.CPUCyclesPerSec, Seconds: 10}
	app2.CPUCyclesPerSec = node.CPUCyclesPerSec
	fit := trueRunEnergy(App{Name: "y", CPUCyclesPerSec: node.CPUCyclesPerSec / 2, Seconds: 10}, node)
	if over <= fit {
		t.Fatal("overloaded run should cost more (static stretch)")
	}
}

func TestAppInterfaceRebindChangesPrediction(t *testing.T) {
	app := e3Apps()[1] // kvstore
	onCompute, err := AppInterface(app, NodeInterface(ComputeNode()))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := onCompute.ExpectedJoules("run")
	if err != nil {
		t.Fatal(err)
	}
	onBigmem, err := onCompute.Rebind("node", NodeInterface(BigMemoryNode()))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := onBigmem.ExpectedJoules("run")
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= e1 {
		t.Fatalf("kvstore on bigmem (%v) should predict cheaper than compute (%v)", e2, e1)
	}
}
