package sched

// LevelIndices returns the canonical candidate enumeration of a DVFS
// level space with n levels: every level index, ascending. The
// chip-local placer (choosePlacement), the fleet scheduler's candidate
// ranking, and its cost-pricing batch (internal/schedsvc) all iterate
// exactly this list; sharing one exported helper keeps the enumerations
// from drifting apart when a level space grows or gets reordered.
func LevelIndices(n int) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
