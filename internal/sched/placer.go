package sched

import (
	"fmt"
	"math"

	"energyclarity/internal/core"
	"energyclarity/internal/energy"
)

// This file implements the paper's §1 Kubernetes scenario: "a memory-
// intensive application might consume less energy on a big-memory node
// than on a compute node, but Kubernetes wouldn't know ahead of time what
// the application will do."
//
// Two placers share the same cluster: RequestPlacer bin-packs on declared
// CPU requests (today's Kubernetes), InterfacePlacer evaluates each app's
// energy interface against each node's energy interface and picks the
// cheapest feasible node.

// NodeSpec describes one node type's capacity and energy character.
type NodeSpec struct {
	Name string
	// Capacities.
	CPUCyclesPerSec float64
	MemAccPerSec    float64
	// Energy character.
	CPUEnergyPerCycle energy.Joules
	MemEnergyPerAcc   energy.Joules
	StaticPower       energy.Watts
}

// ComputeNode returns a CPU-optimized node: cheap cycles, narrow and
// expensive memory path.
func ComputeNode() NodeSpec {
	return NodeSpec{
		Name:              "compute",
		CPUCyclesPerSec:   9.6e10, // 32 cores × 3 GHz
		MemAccPerSec:      2.0e9,
		CPUEnergyPerCycle: 0.9e-9,
		MemEnergyPerAcc:   42e-9,
		StaticPower:       95,
	}
}

// BigMemoryNode returns a memory-optimized node: many channels make
// accesses cheap and fast; cycles cost more (lower-bin CPUs, more DIMM
// background power amortized per access).
func BigMemoryNode() NodeSpec {
	return NodeSpec{
		Name:              "bigmem",
		CPUCyclesPerSec:   4.8e10, // 24 cores × 2 GHz
		MemAccPerSec:      8.0e9,
		CPUEnergyPerCycle: 1.5e-9,
		MemEnergyPerAcc:   14e-9,
		StaticPower:       120,
	}
}

// NodeInterface builds a node's energy interface: method
// run(cpu_cycles_per_sec, mem_acc_per_sec, seconds) — the energy to host a
// workload of that intensity for a duration, including the node's static
// share.
func NodeInterface(spec NodeSpec) *core.Interface {
	iface := core.New("node_" + spec.Name)
	iface.SetDoc(fmt.Sprintf("energy interface of a %s node", spec.Name))
	iface.MustMethod(core.Method{
		Name: "run", Params: []string{"cpu_cycles_per_sec", "mem_acc_per_sec", "seconds"},
		Doc: "energy to host a workload of the given intensity for a duration",
		Body: func(c *core.Call) energy.Joules {
			cps, aps, sec := c.Num(0), c.Num(1), c.Num(2)
			if sec < 0 || cps < 0 || aps < 0 {
				core.Fail(fmt.Errorf("sched: negative workload intensity"))
			}
			dynamic := energy.Joules(cps*sec)*spec.CPUEnergyPerCycle +
				energy.Joules(aps*sec)*spec.MemEnergyPerAcc
			return dynamic + spec.StaticPower.OverSeconds(sec)
		},
	})
	return iface
}

// App is a workload to place: declared resource requests (what today's
// placers see) and its actual behaviour (what the energy interface states).
type App struct {
	Name string
	// Declared request, in fraction of a node's CPU (what Kubernetes sees).
	CPURequest float64
	// Actual behaviour.
	CPUCyclesPerSec float64
	MemAccPerSec    float64
	Seconds         float64
}

// AppInterface builds the app's energy interface: run() composed over the
// bound node interface ("node"). Rebinding "node" re-targets the app to a
// different node type — placement is literally interface rebinding.
func AppInterface(app App, node *core.Interface) (*core.Interface, error) {
	iface := core.New("app_" + app.Name)
	iface.SetDoc("energy interface of application " + app.Name)
	if err := iface.Bind("node", node); err != nil {
		return nil, err
	}
	iface.MustMethod(core.Method{
		Name: "run",
		Doc:  "energy for this app's full run on the bound node",
		Body: func(c *core.Call) energy.Joules {
			return c.E("node", "run",
				core.Num(app.CPUCyclesPerSec),
				core.Num(app.MemAccPerSec),
				core.Num(app.Seconds))
		},
	})
	return iface, nil
}

// trueRunEnergy is the simulator's ground truth for one app on one node.
// If the app's demand exceeds the node's throughput, the run stretches
// (and burns static power) proportionally.
func trueRunEnergy(app App, node NodeSpec) energy.Joules {
	stretch := 1.0
	if r := app.CPUCyclesPerSec / node.CPUCyclesPerSec; r > stretch {
		stretch = r
	}
	if r := app.MemAccPerSec / node.MemAccPerSec; r > stretch {
		stretch = r
	}
	sec := app.Seconds * stretch
	cycles := app.CPUCyclesPerSec * app.Seconds
	accs := app.MemAccPerSec * app.Seconds
	return energy.Joules(cycles)*node.CPUEnergyPerCycle +
		energy.Joules(accs)*node.MemEnergyPerAcc +
		node.StaticPower.OverSeconds(sec)
}

// PlacementResult reports where each app went and what it truly cost.
type PlacementResult struct {
	Placer string
	Nodes  []string // node name per app
	Energy energy.Joules
}

// PlaceByRequest mimics a request-based placer: apps with large CPU
// requests go to the compute node, others to whichever node has the most
// spare declared capacity — the app's actual memory behaviour is invisible
// to it.
func PlaceByRequest(apps []App, nodes []NodeSpec) PlacementResult {
	res := PlacementResult{Placer: "request-based"}
	for _, app := range apps {
		// Request-based heuristic: CPU-heavy requests get the node with
		// the highest CPU capacity; everything else round-robins to the
		// first node that "fits" (they all fit — requests say nothing
		// about memory).
		best := 0
		if app.CPURequest >= 0.5 {
			for i, n := range nodes {
				if n.CPUCyclesPerSec > nodes[best].CPUCyclesPerSec {
					best = i
				}
			}
		}
		res.Nodes = append(res.Nodes, nodes[best].Name)
		res.Energy += trueRunEnergy(app, nodes[best])
	}
	return res
}

// PlaceByInterface evaluates each app's energy interface rebound to each
// node's interface and picks the cheapest node whose throughput fits the
// app's declared intensity.
func PlaceByInterface(apps []App, nodes []NodeSpec) (PlacementResult, error) {
	res := PlacementResult{Placer: "interface-aware"}
	nodeIfaces := make([]*core.Interface, len(nodes))
	for i, n := range nodes {
		nodeIfaces[i] = NodeInterface(n)
	}
	for _, app := range apps {
		appIface, err := AppInterface(app, nodeIfaces[0])
		if err != nil {
			return PlacementResult{}, err
		}
		best := -1
		var bestE energy.Joules
		// When nothing fits, fall back to the node the app overloads the
		// least (minimal run stretch), breaking ties by predicted energy —
		// never blindly to nodes[0], which may be the worst overload of all.
		fallback := -1
		fallbackStretch := math.Inf(1)
		var fallbackE energy.Joules
		for i := range nodes {
			candidate := appIface
			if i > 0 {
				candidate, err = appIface.Rebind("node", nodeIfaces[i])
				if err != nil {
					return PlacementResult{}, err
				}
			}
			e, err := candidate.ExpectedJoules("run")
			if err != nil {
				return PlacementResult{}, err
			}
			// Feasibility from declared intensity vs node throughput.
			stretch := 1.0
			if r := app.CPUCyclesPerSec / nodes[i].CPUCyclesPerSec; r > stretch {
				stretch = r
			}
			if r := app.MemAccPerSec / nodes[i].MemAccPerSec; r > stretch {
				stretch = r
			}
			if stretch <= 1 && (best == -1 || e < bestE) {
				best, bestE = i, e
			}
			if stretch < fallbackStretch ||
				(stretch == fallbackStretch && e < fallbackE) {
				fallback, fallbackStretch, fallbackE = i, stretch, e
			}
		}
		if best == -1 {
			best = fallback
		}
		res.Nodes = append(res.Nodes, nodes[best].Name)
		res.Energy += trueRunEnergy(app, nodes[best])
	}
	return res, nil
}
