package sched

import "testing"

// TestLevelIndicesCanonical pins the shared DVFS candidate enumeration:
// every index [0, n), ascending, and nil for empty spaces. Both
// choosePlacement and internal/schedsvc's candidate ranking iterate this
// exact list; the companion test in schedsvc pins the agreement from the
// other side.
func TestLevelIndicesCanonical(t *testing.T) {
	if got := LevelIndices(0); got != nil {
		t.Fatalf("LevelIndices(0) = %v, want nil", got)
	}
	if got := LevelIndices(-3); got != nil {
		t.Fatalf("LevelIndices(-3) = %v, want nil", got)
	}
	for n := 1; n <= 8; n++ {
		got := LevelIndices(n)
		if len(got) != n {
			t.Fatalf("LevelIndices(%d) has %d entries", n, len(got))
		}
		for i, l := range got {
			if l != i {
				t.Fatalf("LevelIndices(%d)[%d] = %d, want %d", n, i, l, i)
			}
		}
	}
}
