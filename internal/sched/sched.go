// Package sched implements the CPU schedulers of the paper's §1 Linux EAS
// scenario and the Kubernetes-style placer of the node-selection scenario.
//
// Two schedulers share one placement optimizer and differ only in how they
// predict each task's next-quantum demand:
//
//   - EASBaseline mirrors the Linux Energy-Aware Scheduler as the paper
//     describes it: "for any given task, it looks at its past core
//     utilization, and uses the average to predict how much energy it will
//     consume in the next scheduling quantum" — a utilization proxy that is
//     systematically wrong for bimodal tasks.
//   - InterfaceAware asks the task's energy interface, which states demand
//     as a function of the quantum index (the program structure determines
//     it), so phase changes are anticipated rather than chased.
//
// Both run on the same cpusim chip, and energy is compared from the chip's
// package counter — the experiment design of E2.
package sched

import (
	"fmt"
	"math"
	"sort"

	"energyclarity/internal/core"
	"energyclarity/internal/cpusim"
	"energyclarity/internal/energy"
)

// Task is one schedulable workload: its true demand signal and its energy
// interface. Demand must be callable in any order (pure in q) for the
// interface path; the scheduler queries the truth only when executing.
type Task struct {
	Name string
	// Demand returns the true cycles the task needs in quantum q.
	Demand func(q int) float64
	// Iface is the task's energy interface, exposing method
	// demand_cycles(q); nil for tasks that have not adopted interfaces
	// (the baseline never consults it).
	Iface *core.Interface
}

// TaskInterface builds a task's energy interface from its (interface-
// declared) demand model. In the paper's architecture the interface is a
// program the developer writes; here the program is the demand closure,
// exposed as method demand_cycles(q). The same object can also price a
// quantum on a given core via run(q, energy_per_cycle).
func TaskInterface(name string, demand func(q int) float64) *core.Interface {
	iface := core.New("task_" + name)
	iface.SetDoc("energy interface of task " + name)
	iface.MustMethod(core.Method{
		Name: "demand_cycles", Params: []string{"q"},
		Doc: "cycles the task will need in quantum q",
		Body: func(c *core.Call) energy.Joules {
			q := c.Num(0)
			if q < 0 || q != math.Trunc(q) {
				core.Fail(fmt.Errorf("sched: quantum index must be a non-negative integer"))
			}
			// Cycle counts ride in the Joules channel: the method is a
			// "abstract unit" interface (1 unit = 1 cycle), see §3.
			return energy.Joules(demand(int(q)))
		},
	})
	iface.MustMethod(core.Method{
		Name: "run", Params: []string{"q", "energy_per_cycle"},
		Doc: "energy to execute quantum q at a given per-cycle cost",
		Body: func(c *core.Call) energy.Joules {
			return c.Self("demand_cycles", core.Num(c.Num(0))) * energy.Joules(c.Num(1))
		},
	})
	return iface
}

// Scheduler decides, per quantum, each task's core type and DVFS level.
type Scheduler interface {
	Name() string
	// Plan returns one assignment per task for quantum q. A non-nil error
	// aborts the run: a scheduler that cannot resolve a demand estimate
	// must say so rather than silently placing with a wrong one.
	Plan(q int, tasks []*Task) ([]Placement, error)
	// Observe feeds back what each task actually used in quantum q and
	// whether it saturated its core (work was left over).
	Observe(q int, used []float64, saturated []bool)
}

// Placement is a scheduling decision for one task.
type Placement struct {
	CoreType string // "big" or "little"
	Level    int
	Cycles   float64 // demand estimate the decision was made for
}

// choosePlacement picks the cheapest (coreType, level) able to serve the
// predicted demand within one quantum; if nothing can, it picks the
// biggest capacity. Shared by both schedulers so they differ only in the
// demand estimate.
func choosePlacement(chip *cpusim.Chip, demand float64) Placement {
	bestFeasible := Placement{Level: -1}
	var bestFeasibleE energy.Joules
	fallback := Placement{Level: -1}
	fallbackCap := -1.0

	// Collect one spec per core type and visit them in sorted-name order:
	// ranging over the map directly would make equal-capacity fallback
	// selection (and equal-energy tie-breaks) depend on Go's randomized
	// map iteration, i.e. placement would differ run to run.
	seen := map[string]cpusim.CoreSpec{}
	types := make([]string, 0, 4)
	for i := 0; i < chip.NumCores(); i++ {
		spec := chip.Core(i)
		if _, dup := seen[spec.Type]; !dup {
			seen[spec.Type] = spec
			types = append(types, spec.Type)
		}
	}
	sort.Strings(types)
	for _, typ := range types {
		spec := seen[typ]
		for _, l := range LevelIndices(len(spec.Freqs)) {
			capCycles := spec.CapacityCycles(l) * chip.Quantum()
			// Energy to serve `demand` cycles this quantum on this choice.
			served := math.Min(demand, capCycles)
			busy := served / capCycles
			e := spec.Freqs[l].ActiveW.OverSeconds(chip.Quantum()*busy) +
				spec.Idle.OverSeconds(chip.Quantum()*(1-busy))
			if capCycles >= demand {
				if bestFeasible.Level == -1 || e < bestFeasibleE ||
					(e == bestFeasibleE && typ < bestFeasible.CoreType) {
					bestFeasible = Placement{CoreType: typ, Level: l, Cycles: demand}
					bestFeasibleE = e
				}
			}
			if capCycles > fallbackCap {
				fallbackCap = capCycles
				fallback = Placement{CoreType: typ, Level: l, Cycles: demand}
			}
		}
	}
	if bestFeasible.Level != -1 {
		return bestFeasible
	}
	return fallback
}

// EASBaseline predicts demand as the exponentially-weighted average of
// observed past utilization (the Linux EAS PELT-style proxy).
type EASBaseline struct {
	chip  *cpusim.Chip
	alpha float64
	est   []float64
	init  []bool
}

// NewEASBaseline returns the baseline scheduler for nTasks tasks. alpha is
// the EWMA weight of the newest observation (Linux PELT halflife ~32ms on
// 1ms updates corresponds to small alpha; 0.3 is a reasonable quantum-
// scale setting).
func NewEASBaseline(chip *cpusim.Chip, nTasks int, alpha float64) *EASBaseline {
	return &EASBaseline{
		chip:  chip,
		alpha: alpha,
		est:   make([]float64, nTasks),
		init:  make([]bool, nTasks),
	}
}

// Name implements Scheduler.
func (s *EASBaseline) Name() string { return "eas-baseline" }

// Plan implements Scheduler.
func (s *EASBaseline) Plan(q int, tasks []*Task) ([]Placement, error) {
	out := make([]Placement, len(tasks))
	for i := range tasks {
		demand := s.est[i]
		if !s.init[i] {
			// No history: assume a middling load, as EAS effectively does
			// for fresh tasks.
			demand = s.chip.Core(0).CapacityCycles(0) * s.chip.Quantum() / 2
		}
		out[i] = choosePlacement(s.chip, demand)
	}
	return out, nil
}

// Observe implements Scheduler. Utilization is capped at core capacity, so
// the proxy can never see demand above it; like Linux EAS's misfit-task
// handling, a saturated task's estimate is escalated (doubled) so the next
// placement tries a bigger operating point. The estimate still lags every
// phase change in both directions — the §1 critique.
func (s *EASBaseline) Observe(q int, used []float64, saturated []bool) {
	for i, u := range used {
		if saturated[i] {
			est := u * 2
			if est < s.est[i] {
				est = s.est[i]
			}
			s.est[i] = est
			s.init[i] = true
			continue
		}
		if !s.init[i] {
			s.est[i] = u
			s.init[i] = true
			continue
		}
		s.est[i] = s.alpha*u + (1-s.alpha)*s.est[i]
	}
}

// InterfaceAware queries each task's energy interface for its declared
// next-quantum demand.
type InterfaceAware struct {
	chip *cpusim.Chip
	// margin over-provisions the declared demand to absorb jitter the
	// interface does not model (ECV-style headroom).
	margin float64
}

// NewInterfaceAware returns the interface-consuming scheduler. margin is a
// relative headroom on declared demand (e.g. 0.1 for 10%).
func NewInterfaceAware(chip *cpusim.Chip, margin float64) *InterfaceAware {
	return &InterfaceAware{chip: chip, margin: margin}
}

// Name implements Scheduler.
func (s *InterfaceAware) Name() string { return "interface-aware" }

// Plan implements Scheduler. A failing energy interface is an error, not
// a zero: placing with demand = 0 (the minimum operating point) would
// mask the interface bug as an inexplicable QoS collapse.
func (s *InterfaceAware) Plan(q int, tasks []*Task) ([]Placement, error) {
	out := make([]Placement, len(tasks))
	for i, t := range tasks {
		var demand float64
		if t.Iface != nil {
			d, err := t.Iface.ExpectedJoules("demand_cycles", core.Num(float64(q)))
			if err != nil {
				return nil, fmt.Errorf("sched: task %d (%s) quantum %d: demand interface: %w",
					i, t.Name, q, err)
			}
			demand = float64(d) * (1 + s.margin)
		}
		out[i] = choosePlacement(s.chip, demand)
	}
	return out, nil
}

// Observe implements Scheduler (the interface path needs no feedback).
func (s *InterfaceAware) Observe(q int, used []float64, saturated []bool) {}

// RunResult summarizes a scheduling run.
type RunResult struct {
	Scheduler   string
	Quanta      int
	TotalEnergy energy.Joules
	// UnmetCycles sums, over quanta, the cycles of work still pending at
	// each quantum boundary — a backlog-latency (QoS) measure: work that
	// stays late for k quanta contributes k times.
	UnmetCycles float64
	DemandTotal float64
}

// UnmetFraction returns backlog cycle-quanta normalized by total demand —
// the run's QoS penalty (0 when every quantum's work finished in time).
func (r RunResult) UnmetFraction() float64 {
	if r.DemandTotal == 0 {
		return 0
	}
	return r.UnmetCycles / r.DemandTotal
}

// Run executes tasks under sched on chip for the given number of quanta.
// Each task runs alone on the core the scheduler picked for it (one task
// per core; the chip must have at least as many cores of each type as the
// scheduler requests, or spill goes to any free core).
func Run(chip *cpusim.Chip, sched Scheduler, tasks []*Task, quanta int) (RunResult, error) {
	if len(tasks) == 0 {
		return RunResult{}, fmt.Errorf("sched: no tasks")
	}
	if len(tasks) > chip.NumCores() {
		return RunResult{}, fmt.Errorf("sched: %d tasks exceed %d cores", len(tasks), chip.NumCores())
	}
	res := RunResult{Scheduler: sched.Name(), Quanta: quanta}
	backlog := make([]float64, len(tasks))

	for q := 0; q < quanta; q++ {
		placements, err := sched.Plan(q, tasks)
		if err != nil {
			return RunResult{}, err
		}

		// Bind each task to a physical core of the requested type; spill to
		// any remaining core if the type is exhausted.
		used := map[int]bool{}
		taskCore := make([]int, len(tasks))
		for i, p := range placements {
			taskCore[i] = -1
			for c := 0; c < chip.NumCores(); c++ {
				if !used[c] && chip.Core(c).Type == p.CoreType {
					used[c] = true
					taskCore[i] = c
					break
				}
			}
		}
		for i := range tasks {
			if taskCore[i] != -1 {
				continue
			}
			for c := 0; c < chip.NumCores(); c++ {
				if !used[c] {
					used[c] = true
					taskCore[i] = c
					// The requested level may not exist on the spill core.
					if placements[i].Level >= len(chip.Core(c).Freqs) {
						placements[i].Level = len(chip.Core(c).Freqs) - 1
					}
					break
				}
			}
		}

		// True demand for this quantum: new work plus backlog.
		assign := make([]cpusim.Assignment, chip.NumCores())
		for c := range assign {
			assign[c] = cpusim.Assignment{Level: -1}
		}
		trueDemand := make([]float64, len(tasks))
		for i, t := range tasks {
			d := t.Demand(q)
			res.DemandTotal += d
			trueDemand[i] = d + backlog[i]
			assign[taskCore[i]] = cpusim.Assignment{
				Level:  placements[i].Level,
				Cycles: trueDemand[i],
			}
		}

		step, err := chip.Step(assign)
		if err != nil {
			return RunResult{}, err
		}
		usedCycles := make([]float64, len(tasks))
		saturated := make([]bool, len(tasks))
		for i := range tasks {
			c := taskCore[i]
			usedCycles[i] = step.Completed[c]
			saturated[i] = step.Unmet[c] > 0
			backlog[i] = step.Unmet[c]
			res.UnmetCycles += step.Unmet[c]
		}
		sched.Observe(q, usedCycles, saturated)
	}
	res.TotalEnergy = chip.PackageEnergy()
	return res, nil
}
