package schedsvc

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"sort"

	"energyclarity/internal/energy"
	"energyclarity/internal/sched"
)

// This file is the scheduling round loop: estimate demand, rank
// candidate (node class, DVFS level) placements, fill a capacity ledger
// greedily, then advance the ground-truth simulator. The fluid cluster
// model keeps per-round work proportional to cohorts × candidates — a
// few hundred operations — so a million tasks over thousands of nodes
// schedules in the time it takes the fleet to answer one canonical
// batch.

// candidate is one (node class, DVFS level) placement option with its
// ranking score (marginal J/cycle, carbon-weighted for PolicyCarbon).
type candidate struct {
	class string
	level int
	score float64
}

// alloc records cycles a cohort placed onto one candidate in one round.
type alloc struct {
	class  string
	level  int
	cycles float64
}

// runState carries mutable per-run scheduling state.
type runState struct {
	backlog []float64 // per cohort (s.groups order), cycles owed
	est     []float64 // per cohort, PolicyUtilization's EWMA usage estimate
	hash    *placementHash
}

// placementHash digests every placement decision; identical runs must
// produce identical digests (the determinism acceptance criterion).
type placementHash struct{ h hash.Hash64 }

func newPlacementHash() *placementHash { return &placementHash{h: fnv.New64a()} }

func (p *placementHash) add(round, cohort int, a alloc) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(round))
	p.h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(cohort))
	p.h.Write(buf[:])
	p.h.Write([]byte(a.class))
	binary.LittleEndian.PutUint64(buf[:], uint64(a.level))
	p.h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(a.cycles))
	p.h.Write(buf[:])
}

func (p *placementHash) sum() uint64 { return p.h.Sum64() }

// trueDemand returns a cohort's ground-truth per-task demand in round q,
// straight from the task class shape (what the registered interface also
// declares — the declared model is honest here; Margin is the hedge for
// when it would not be).
func (s *Scheduler) trueDemand(g TaskGroup, q int) float64 {
	tc := s.classes[g.Class]
	if (q+g.Phase)%tc.Period() < tc.PeakLen {
		return tc.PeakCycles
	}
	return tc.TroughCycles
}

// utilizationEstimates is the no-interface baseline's demand model: the
// static request, escalated by an EWMA usage signal that doubles when a
// cohort saturates its allocation (the EAS-style misfit reaction). It
// converges only by chasing observed usage — which is precisely the lag
// the paper's §1 argues interfaces remove.
const utilizationAlpha = 0.3

func (st *runState) utilizationEstimate(i int, tc TaskClass) float64 {
	if st.est[i] > tc.RequestCycles {
		return st.est[i]
	}
	return tc.RequestCycles
}

func (st *runState) observeUtilization(i int, allocated, used float64) {
	if used >= allocated && allocated > 0 {
		// Saturated: usage tells us nothing about true demand except
		// "more" — escalate multiplicatively from the allocation.
		if d := allocated * 2; d > st.est[i] {
			st.est[i] = d
		}
		return
	}
	st.est[i] = (1-utilizationAlpha)*st.est[i] + utilizationAlpha*used
}

// rankCandidates orders every (class, level) by marginal cost per cycle
// ascending — joules for PolicyInterface, intensity-weighted grams for
// PolicyCarbon — with (class, level) as the deterministic tie-break. The
// baseline ignores cost entirely: biggest boxes first, top level only.
func (s *Scheduler) rankCandidates(policy Policy, uc unitCosts, q int) ([]candidate, error) {
	var cands []candidate
	for _, nc := range s.cfg.Nodes {
		if policy == PolicyUtilization {
			top := len(nc.Levels) - 1
			cands = append(cands, candidate{
				class: nc.Name, level: top,
				// Rank by raw throughput, biggest first.
				score: -nc.Levels[top].CyclesPerSec,
			})
			continue
		}
		for _, l := range sched.LevelIndices(len(nc.Levels)) {
			score := uc.perCycle[nc.Name][l]
			if policy == PolicyCarbon {
				intensity, err := s.cfg.Carbon.Intensity(nc.Region, q)
				if err != nil {
					return nil, err
				}
				score = CarbonGrams(1, intensity) * score // grams per cycle
			}
			cands = append(cands, candidate{class: nc.Name, level: l, score: score})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		if cands[i].class != cands[j].class {
			return cands[i].class < cands[j].class
		}
		return cands[i].level < cands[j].level
	})
	return cands, nil
}

// placeRound fills the capacity ledger: cohorts in canonical order, each
// taking capacity from the cheapest candidates that still have nodes.
// Returns per-cohort allocations. Nodes are fluid (fractional) — a
// cohort of 300k tasks takes 412.7 nodes' worth of a level, and the
// 0.7 node's idle remainder is accounted by the simulator.
func (s *Scheduler) placeRound(round int, demands []float64, cands []candidate, st *runState) [][]alloc {
	nodesLeft := map[string]float64{}
	for _, nc := range s.cfg.Nodes {
		nodesLeft[nc.Name] = float64(nc.Count)
	}
	capPerNode := map[string][]float64{}
	for _, nc := range s.cfg.Nodes {
		caps := make([]float64, len(nc.Levels))
		for l := range nc.Levels {
			caps[l] = nc.Levels[l].CyclesPerSec * s.cfg.RoundSeconds
		}
		capPerNode[nc.Name] = caps
	}
	out := make([][]alloc, len(s.groups))
	for i := range s.groups {
		need := demands[i]
		for _, c := range cands {
			if need <= 0 {
				break
			}
			avail := nodesLeft[c.class] * capPerNode[c.class][c.level]
			if avail <= 0 {
				continue
			}
			take := need
			if take > avail {
				take = avail
			}
			nodesLeft[c.class] -= take / capPerNode[c.class][c.level]
			need -= take
			a := alloc{class: c.class, level: c.level, cycles: take}
			out[i] = append(out[i], a)
			st.hash.add(round, i, a)
		}
	}
	return out
}

// Run schedules rounds [0, rounds) under policy and returns the run's
// accounting. Fleet-backed policies issue one canonical evalbatch per
// round; the baseline issues none. Any fleet error aborts the run — a
// scheduler that cannot price a placement must not place blind.
func (s *Scheduler) Run(ctx context.Context, policy Policy, rounds int) (Result, error) {
	if rounds <= 0 {
		return Result{}, fmt.Errorf("schedsvc: rounds must be positive")
	}
	if policy == PolicyCarbon {
		for _, nc := range s.cfg.Nodes {
			if _, err := s.cfg.Carbon.Intensity(nc.Region, 0); err != nil {
				return Result{}, err
			}
		}
	}
	res := Result{Policy: policy.String(), Rounds: rounds}
	st := &runState{
		backlog: make([]float64, len(s.groups)),
		est:     make([]float64, len(s.groups)),
		hash:    newPlacementHash(),
	}
	var uc unitCosts
	for q := 0; q < rounds; q++ {
		// 1. Demand model: declared (fleet) or estimated (baseline).
		demands := make([]float64, len(s.groups)) // cohort totals
		trueTotals := make([]float64, len(s.groups))
		for i, g := range s.groups {
			trueTotals[i] = s.trueDemand(g, q) * float64(g.N)
		}
		if policy.UsesFleet() {
			perTask, err := s.fetchDemands(ctx, q, &res.Fleet)
			if err != nil {
				return Result{}, err
			}
			for i, g := range s.groups {
				demands[i] = perTask[i]*float64(g.N) + st.backlog[i]
			}
			uc2, err := s.fetchCosts(ctx, &res.Fleet)
			if err != nil {
				return Result{}, err
			}
			uc = uc2
		} else {
			for i, g := range s.groups {
				tc := s.classes[g.Class]
				demands[i] = st.utilizationEstimate(i, tc)*float64(g.N) + st.backlog[i]
			}
		}

		// 2. Rank candidates and fill the ledger.
		cands, err := s.rankCandidates(policy, uc, q)
		if err != nil {
			return Result{}, err
		}
		allocs := s.placeRound(q, demands, cands, st)

		// 3. Ground-truth simulation: execute, meter, roll backlog.
		// Executed cycles per (class, level), level-indexed slices so the
		// energy summation below runs in a fixed order (float addition
		// order is part of bit-identical determinism).
		execByCand := map[string][]float64{}
		for _, nc := range s.cfg.Nodes {
			execByCand[nc.Name] = make([]float64, len(nc.Levels))
		}
		for i, g := range s.groups {
			allocated := 0.0
			for _, a := range allocs[i] {
				allocated += a.cycles
			}
			owed := trueTotals[i] + st.backlog[i]
			executed := math.Min(allocated, owed)
			// Spread executed cycles over the cohort's allocations in
			// order (cheapest first, so overhang falls off the worst
			// candidate).
			rem := executed
			for _, a := range allocs[i] {
				run := math.Min(rem, a.cycles)
				if run > 0 {
					execByCand[a.class][a.level] += run
					rem -= run
				}
			}
			st.backlog[i] = owed - executed
			res.UnmetCycles += st.backlog[i]
			res.DemandCycles += trueTotals[i]
			// Task accounting: a task is placed when its share of the
			// round's obligation was fully executed.
			placedTasks := int64(float64(g.N) * safeDiv(executed, owed))
			res.Placed += placedTasks
			res.Unplaced += int64(g.N) - placedTasks
			if !policy.UsesFleet() {
				// The usage signal is per task — cohort totals would leak
				// the cohort size into the estimate's units.
				st.observeUtilization(i, allocated/float64(g.N), executed/float64(g.N))
			}
		}
		// Energy: idle floor for the whole fixed pool, plus marginal
		// active energy for executed cycles; carbon prices each class's
		// share at its region's intensity this round.
		for _, nc := range s.cfg.Nodes {
			e := float64(nc.IdleW) * s.cfg.RoundSeconds * float64(nc.Count)
			for l, cycles := range execByCand[nc.Name] {
				e += cycles * nc.EnergyPerCycle(l)
			}
			res.Energy += energy.Joules(e)
			if len(s.cfg.Carbon) > 0 {
				if intensity, err := s.cfg.Carbon.Intensity(nc.Region, q); err == nil {
					res.CarbonGrams += CarbonGrams(energy.Joules(e), intensity)
				}
			}
		}
	}
	res.PlacementHash = st.hash.sum()
	return res, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}
