package schedsvc

import (
	"fmt"
	"math"
	"sort"

	"energyclarity/internal/energy"
)

// RegionCarbon is a deterministic time-varying grid-intensity signal for
// one region, in grams CO2-equivalent per kWh: a sinusoid around Base
// with amplitude Amp and period Period rounds, phase-shifted by Phase.
// It is a stand-in for a marginal-intensity feed (the LLM-inference
// carbon simulation line of work); the scheduler only ever samples it at
// integer rounds, so runs are reproducible.
type RegionCarbon struct {
	Base   float64 // mean intensity, gCO2e/kWh
	Amp    float64 // sinusoid amplitude, gCO2e/kWh
	Period int     // rounds per cycle (0 or 1 means constant)
	Phase  int     // rounds of phase shift
}

// At returns the region's intensity in round q, floored at zero.
func (rc RegionCarbon) At(q int) float64 {
	v := rc.Base
	if rc.Amp != 0 && rc.Period > 1 {
		v += rc.Amp * math.Sin(2*math.Pi*float64(q+rc.Phase)/float64(rc.Period))
	}
	if v < 0 {
		return 0
	}
	return v
}

// CarbonTrace maps region name to its grid-intensity signal.
type CarbonTrace map[string]RegionCarbon

// Intensity returns region's intensity in round q; unknown regions fail
// loudly rather than scheduling against a silent zero-carbon grid.
func (ct CarbonTrace) Intensity(region string, q int) (float64, error) {
	rc, ok := ct[region]
	if !ok {
		return 0, fmt.Errorf("schedsvc: no carbon trace for region %q", region)
	}
	return rc.At(q), nil
}

// Regions returns the trace's region names, sorted.
func (ct CarbonTrace) Regions() []string {
	out := make([]string, 0, len(ct))
	for r := range ct {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// joulesPerKWh converts the J→kWh denominator once: 1 kWh = 3.6e6 J.
const joulesPerKWh = 3.6e6

// CarbonGrams prices energy at a grid intensity (gCO2e/kWh).
func CarbonGrams(e energy.Joules, gramsPerKWh float64) float64 {
	return float64(e) / joulesPerKWh * gramsPerKWh
}
