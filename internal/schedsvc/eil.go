package schedsvc

import (
	"fmt"
	"strconv"
	"strings"
)

// This file turns a Config's node and task classes into EIL source. The
// scheduler never evaluates these interfaces in-process: the source is
// registered fleet-wide through the router (Scheduler.Register) and then
// queried over the wire, so the declared node-cost and task-demand models
// live where every other energy interface lives — in the served registry,
// versioned, cached, and visible to any other fleet client.

// identName mangles a class name into an EIL identifier: any character
// outside [A-Za-z0-9_] becomes '_'. Config.Validate rejects class sets
// whose mangled names collide.
func identName(class string) string {
	out := []byte(class)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// NodeInterfaceName returns the registered interface name for a node
// class.
func NodeInterfaceName(class string) string { return "node_" + identName(class) }

// TaskInterfaceName returns the registered interface name for a task
// class.
func TaskInterfaceName(class string) string { return "task_" + identName(class) }

// num formats a float as an EIL numeric literal. strconv's shortest
// round-trip form ('g') emits plain or exponent notation, both of which
// the EIL lexer accepts.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// perLevel emits an if/else chain dispatching on the numeric `level`
// argument: branch l guards `level < l+0.5`, the last level is the plain
// else arm (a single level needs no branch at all). body(l) supplies the
// statement lines of arm l.
func perLevel(b *strings.Builder, levels int, body func(l int) []string) {
	for l := 0; l < levels; l++ {
		indent := "      "
		switch {
		case levels == 1:
			indent = "    "
		case l == 0:
			fmt.Fprintf(b, "    if level < %s {\n", num(float64(l)+0.5))
		case l < levels-1:
			fmt.Fprintf(b, "    } else if level < %s {\n", num(float64(l)+0.5))
		default:
			b.WriteString("    } else {\n")
		}
		for _, line := range body(l) {
			b.WriteString(indent + line + "\n")
		}
	}
	if levels > 1 {
		b.WriteString("    }\n")
	}
}

// NodeEIL returns the EIL interface for one node class, folded over the
// round length:
//
//	cost(cycles, level)  — joules for one node of the class to execute
//	                       `cycles` at DVFS `level` for a round: active
//	                       power over the busy fraction, idle power over
//	                       the rest (so running fewer cycles at a lean
//	                       level really is cheaper than racing at the top
//	                       level, the DVFS trade the scheduler explores);
//	idle()               — joules one node burns hosting nothing;
//	capacity(level)      — cycles one node sustains per round at `level`.
//
// Levels select by if/else chain on the numeric argument; the constants
// are pre-multiplied by RoundSeconds so the wire arguments stay the
// canonical (cycles, level) pair the memo keys on.
func NodeEIL(nc NodeClass, roundSeconds float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "interface %s \"energy interface of a %s cluster node (region %s)\" {\n",
		NodeInterfaceName(nc.Name), nc.Name, nc.Region)

	fmt.Fprintf(&b, "  func cost(cycles, level) \"joules to execute cycles for one round at a DVFS level\" {\n")
	perLevel(&b, len(nc.Levels), func(l int) []string {
		op := nc.Levels[l]
		return []string{
			// busy fraction of the round at this level, clamped to the round.
			"let busy = min(cycles / " + num(op.CyclesPerSec*roundSeconds) + ", 1)",
			"return " + num(float64(op.ActiveW)*roundSeconds) + " * busy + " +
				num(float64(nc.IdleW)*roundSeconds) + " * (1 - busy)",
		}
	})
	b.WriteString("  }\n")

	fmt.Fprintf(&b, "  func idle() \"joules one idle node burns per round\" {\n")
	fmt.Fprintf(&b, "    return %s\n  }\n", num(float64(nc.IdleW)*roundSeconds))

	fmt.Fprintf(&b, "  func capacity(level) \"cycles one node sustains per round at a DVFS level\" {\n")
	perLevel(&b, len(nc.Levels), func(l int) []string {
		return []string{"return " + num(nc.Levels[l].CyclesPerSec*roundSeconds)}
	})
	b.WriteString("  }\n")

	b.WriteString("}\n")
	return b.String()
}

// TaskEIL returns the EIL interface for one task class:
//
//	demand_cycles(p) — cycles one task of the class demands in phase p of
//	                   its period (peak for the first PeakLen phases,
//	                   trough after).
//
// Callers reduce the phase index mod Period() before querying, so the
// argument space — and therefore the fleet memo's working set — is
// exactly the period, however many rounds the scheduler runs.
func TaskEIL(tc TaskClass) string {
	var b strings.Builder
	fmt.Fprintf(&b, "interface %s \"declared demand of a %s task\" {\n",
		TaskInterfaceName(tc.Name), tc.Name)
	fmt.Fprintf(&b, "  func demand_cycles(p) \"cycles demanded in phase p of the period\" {\n")
	fmt.Fprintf(&b, "    let phase = p %% %d\n", tc.Period())
	fmt.Fprintf(&b, "    if phase < %s {\n", num(float64(tc.PeakLen)-0.5))
	fmt.Fprintf(&b, "      return %s\n", num(tc.PeakCycles))
	fmt.Fprintf(&b, "    } else {\n")
	fmt.Fprintf(&b, "      return %s\n", num(tc.TroughCycles))
	fmt.Fprintf(&b, "    }\n  }\n}\n")
	return b.String()
}

// SourceEIL concatenates every node and task interface of a Config into
// one registrable EIL source.
func SourceEIL(cfg Config) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	b.WriteString("// generated by schedsvc: cluster node cost and task demand interfaces\n")
	for _, nc := range cfg.Nodes {
		b.WriteString(NodeEIL(nc, cfg.RoundSeconds))
	}
	for _, tc := range cfg.Tasks {
		b.WriteString(TaskEIL(tc))
	}
	return b.String()
}
