package schedsvc

import (
	"context"
	"math"
	"strings"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
	"energyclarity/internal/eisvc"
	"energyclarity/internal/fleet"
)

// testConfig builds a small two-region cluster where the energy-optimal
// and carbon-optimal placements disagree: eff (north) has the cheapest
// joules per cycle, but north's grid is dirtier than south's, so a
// carbon-aware scheduler prefers big (south) even though it burns more
// joules.
func testConfig() Config {
	return Config{
		Nodes: []NodeClass{
			{
				Name: "eff", Region: "north", Count: 4, IdleW: 10,
				Levels: []OperatingPoint{
					{CyclesPerSec: 1e9, ActiveW: 18}, // 8e-9 J/cycle marginal
					{CyclesPerSec: 2e9, ActiveW: 30}, // 10e-9
				},
			},
			{
				Name: "big", Region: "south", Count: 2, IdleW: 50,
				Levels: []OperatingPoint{
					{CyclesPerSec: 8e9, ActiveW: 170},  // 15e-9
					{CyclesPerSec: 16e9, ActiveW: 420}, // ~23.1e-9
				},
			},
		},
		Tasks: []TaskClass{
			{Name: "web", PeakCycles: 2e8, TroughCycles: 2e7,
				PeakLen: 2, TroughLen: 2, RequestCycles: 1e8},
			{Name: "batch", PeakCycles: 1e9, TroughCycles: 1e8,
				PeakLen: 3, TroughLen: 3, RequestCycles: 3e8},
		},
		Groups: []TaskGroup{
			{Class: "web", Phase: 0, N: 40},
			{Class: "web", Phase: 2, N: 40},
			{Class: "batch", Phase: 0, N: 10},
		},
		Margin: 0.05,
		Carbon: CarbonTrace{
			"north": {Base: 300},
			"south": {Base: 150},
		},
	}
}

// TestSourceEILCompilesAndEvaluates pins the generated interfaces'
// semantics by compiling the EIL in-process and checking cost, capacity,
// idle, and demand against hand arithmetic.
func TestSourceEILCompilesAndEvaluates(t *testing.T) {
	cfg := testConfig().withDefaults()
	src := SourceEIL(cfg)
	m, err := eil.Compile(src, nil)
	if err != nil {
		t.Fatalf("generated EIL does not compile: %v\nsource:\n%s", err, src)
	}
	eval := func(iface, method string, args ...float64) float64 {
		t.Helper()
		in := m[iface]
		if in == nil {
			t.Fatalf("interface %s not compiled", iface)
		}
		vals := make([]core.Value, len(args))
		for i, a := range args {
			vals[i] = core.Num(a)
		}
		j, err := in.ExpectedJoules(method, vals...)
		if err != nil {
			t.Fatalf("%s.%s%v: %v", iface, method, args, err)
		}
		return float64(j)
	}

	// node_eff level 0: half-busy round = 18*0.5 + 10*0.5 = 14 J.
	if got := eval("node_eff", "cost", 5e8, 0); math.Abs(got-14) > 1e-9 {
		t.Errorf("node_eff.cost(5e8, 0) = %v, want 14", got)
	}
	// Overload clamps at fully busy.
	if got := eval("node_eff", "cost", 5e9, 0); math.Abs(got-18) > 1e-9 {
		t.Errorf("node_eff.cost(5e9, 0) = %v, want 18", got)
	}
	// Level dispatch picks the last arm for the top level.
	if got := eval("node_big", "cost", 16e9, 1); math.Abs(got-420) > 1e-9 {
		t.Errorf("node_big.cost(16e9, 1) = %v, want 420", got)
	}
	if got := eval("node_big", "capacity", 0); got != 8e9 {
		t.Errorf("node_big.capacity(0) = %v, want 8e9", got)
	}
	if got := eval("node_eff", "idle"); got != 10 {
		t.Errorf("node_eff.idle() = %v, want 10", got)
	}
	// web: phases 0,1 peak; 2,3 trough; argument reduced mod period.
	for p, want := range map[float64]float64{0: 2e8, 1: 2e8, 2: 2e7, 3: 2e7, 5: 2e8} {
		if got := eval("task_web", "demand_cycles", p); got != want {
			t.Errorf("task_web.demand_cycles(%v) = %v, want %v", p, got, want)
		}
	}
}

// startTestFleet boots a small fleet behind a router, registers the
// config's interfaces through the wire, and returns a ready scheduler.
func startTestFleet(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	fl, err := fleet.New(fleet.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Close)
	_, base, stop, err := fl.StartRouter("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	c := eisvc.NewClient(base).TuneTransport(eisvc.TransportTuning{})
	c.Binary = true
	s, err := New(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunPoliciesAgainstFleet is the package's end-to-end story: the
// interface-driven policy beats the utilization baseline on energy at
// strictly better QoS, and the carbon-aware variant trades joules for
// grams under the region-crossed intensity trace.
func TestRunPoliciesAgainstFleet(t *testing.T) {
	s := startTestFleet(t, testConfig())
	ctx := context.Background()
	const rounds = 8

	base, err := s.Run(ctx, PolicyUtilization, rounds)
	if err != nil {
		t.Fatal(err)
	}
	iface, err := s.Run(ctx, PolicyInterface, rounds)
	if err != nil {
		t.Fatal(err)
	}
	carbon, err := s.Run(ctx, PolicyCarbon, rounds)
	if err != nil {
		t.Fatal(err)
	}

	if base.Fleet.Items != 0 {
		t.Errorf("baseline issued %d fleet items, want 0", base.Fleet.Items)
	}
	if iface.Fleet.Items == 0 || iface.Fleet.Batches == 0 {
		t.Fatalf("interface policy did not query the fleet: %+v", iface.Fleet)
	}
	if iface.Fleet.CacheServed == 0 {
		t.Errorf("canonical queries never hit the fleet cache: %+v", iface.Fleet)
	}

	if iface.Energy >= base.Energy {
		t.Errorf("interface energy %v !< baseline %v", iface.Energy, base.Energy)
	}
	if iface.UnmetCycles != 0 {
		t.Errorf("interface policy has backlog: %v cycles", iface.UnmetCycles)
	}
	if base.UnmetCycles <= 0 {
		t.Errorf("baseline shows no QoS backlog; escalation lag not modeled")
	}
	if base.DemandCycles != iface.DemandCycles {
		t.Errorf("policies disagree on ground-truth demand: %v vs %v",
			base.DemandCycles, iface.DemandCycles)
	}

	// north is dirtier than south, so carbon-aware placement must emit
	// less than joule-minimizing placement, paying some joules for it.
	if carbon.CarbonGrams >= iface.CarbonGrams {
		t.Errorf("carbon policy grams %v !< interface grams %v",
			carbon.CarbonGrams, iface.CarbonGrams)
	}
	if carbon.Energy <= iface.Energy {
		t.Errorf("carbon policy should trade joules for grams here: %v <= %v",
			carbon.Energy, iface.Energy)
	}
	if carbon.UnmetCycles != 0 {
		t.Errorf("carbon policy has backlog: %v cycles", carbon.UnmetCycles)
	}
	if carbon.PlacementHash == iface.PlacementHash {
		t.Errorf("carbon and interface policies placed identically; trace had no effect")
	}
}

// TestRunDeterministic runs the same policy repeatedly against the same
// fleet and demands bit-identical results — placement hash, energy bits,
// backlog — across all repetitions.
func TestRunDeterministic(t *testing.T) {
	s := startTestFleet(t, testConfig())
	ctx := context.Background()
	var first Result
	for rep := 0; rep < 50; rep++ {
		got, err := s.Run(ctx, PolicyCarbon, 6)
		if err != nil {
			t.Fatal(err)
		}
		got.Fleet = FleetStats{} // cache hit-rates legitimately vary with warmth
		if rep == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("rep %d diverged:\n got %+v\nwant %+v", rep, got, first)
		}
	}
	if first.PlacementHash == 0 {
		t.Error("placement hash is zero; decisions are not being digested")
	}
}

// TestRunSurfacesFleetErrors: a scheduler whose interfaces are missing
// from the fleet must fail the round loudly, not place with zero demand.
func TestRunSurfacesFleetErrors(t *testing.T) {
	fl, err := fleet.New(fleet.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Close)
	_, base, stop, err := fl.StartRouter("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	c := eisvc.NewClient(base).TuneTransport(eisvc.TransportTuning{})
	s, err := New(testConfig(), c)
	if err != nil {
		t.Fatal(err)
	}
	// No Register: every demand query must fail.
	if _, err := s.Run(context.Background(), PolicyInterface, 2); err == nil {
		t.Fatal("Run succeeded against a fleet with no registered interfaces")
	} else if !strings.Contains(err.Error(), "task_") {
		t.Fatalf("error does not identify the failing interface: %v", err)
	}
}

// TestConfigValidate covers the rejection paths.
func TestConfigValidate(t *testing.T) {
	ok := testConfig()
	if err := ok.withDefaults().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Nodes = nil }},
		{"dup node class", func(c *Config) { c.Nodes = append(c.Nodes, c.Nodes[0]) }},
		{"active below idle", func(c *Config) { c.Nodes[0].Levels[0].ActiveW = 5 }},
		{"levels not ascending", func(c *Config) { c.Nodes[0].Levels[1].CyclesPerSec = 1e8 }},
		{"dup task class", func(c *Config) { c.Tasks = append(c.Tasks, c.Tasks[0]) }},
		{"unknown group class", func(c *Config) { c.Groups[0].Class = "nope" }},
		{"phase out of range", func(c *Config) { c.Groups[0].Phase = 99 }},
	}
	for _, tc := range cases {
		c := testConfig()
		tc.mutate(&c)
		if err := c.withDefaults().Validate(); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}

// TestCarbonTrace pins the intensity signal's shape.
func TestCarbonTrace(t *testing.T) {
	rc := RegionCarbon{Base: 100, Amp: 50, Period: 4, Phase: 1}
	// q+Phase = 1,2,3,4 → sin(π/2), sin(π), sin(3π/2), sin(2π).
	for q, want := range []float64{150, 100, 50, 100} {
		if got := rc.At(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("At(%d) = %v, want %v", q, got, want)
		}
	}
	if got := (RegionCarbon{Base: 10, Amp: 100, Period: 4}).At(3); got != 0 {
		t.Errorf("negative intensity not floored: %v", got)
	}
	ct := CarbonTrace{"b": {}, "a": {}}
	if r := ct.Regions(); len(r) != 2 || r[0] != "a" || r[1] != "b" {
		t.Errorf("Regions() = %v", r)
	}
	if _, err := ct.Intensity("missing", 0); err == nil {
		t.Error("unknown region did not error")
	}
	// 3.6e6 J at 1000 g/kWh is exactly 1 kWh → 1000 g.
	if g := CarbonGrams(3.6e6, 1000); g != 1000 {
		t.Errorf("CarbonGrams = %v", g)
	}
}
