package schedsvc

import (
	"testing"

	"energyclarity/internal/sched"
)

// TestLevelEnumerationAgreesWithSched pins satellite contract between the
// chip-local placer and the fleet scheduler: both sides enumerate DVFS
// candidates through sched.LevelIndices, so for every node class the
// cost-pricing batch and the candidate ranking cover exactly that list —
// no level skipped, none invented, none duplicated.
func TestLevelEnumerationAgreesWithSched(t *testing.T) {
	s, err := New(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// CostRequests: one "cost" request per shared level index per class.
	costLevels := map[string]map[int]int{}
	for _, r := range s.CostRequests() {
		if r.Method != "cost" {
			continue
		}
		if costLevels[r.Interface] == nil {
			costLevels[r.Interface] = map[int]int{}
		}
		costLevels[r.Interface][int(r.Args[1].(float64))]++
	}
	// rankCandidates (interface policy): one candidate per shared index.
	uc := unitCosts{perCycle: map[string][]float64{}, idle: map[string]float64{}}
	for _, nc := range s.cfg.Nodes {
		uc.perCycle[nc.Name] = make([]float64, len(nc.Levels))
	}
	cands, err := s.rankCandidates(PolicyInterface, uc, 0)
	if err != nil {
		t.Fatal(err)
	}
	candLevels := map[string]map[int]int{}
	for _, c := range cands {
		if candLevels[c.class] == nil {
			candLevels[c.class] = map[int]int{}
		}
		candLevels[c.class][c.level]++
	}

	for _, nc := range s.cfg.Nodes {
		want := sched.LevelIndices(len(nc.Levels))
		byCost := costLevels[NodeInterfaceName(nc.Name)]
		byCand := candLevels[nc.Name]
		if len(byCost) != len(want) || len(byCand) != len(want) {
			t.Fatalf("class %s: cost batch covers %d levels, ranking %d, shared helper lists %d",
				nc.Name, len(byCost), len(byCand), len(want))
		}
		for _, l := range want {
			if byCost[l] != 1 {
				t.Errorf("class %s level %d priced %d times in CostRequests, want once", nc.Name, l, byCost[l])
			}
			if byCand[l] != 1 {
				t.Errorf("class %s level %d ranked %d times in rankCandidates, want once", nc.Name, l, byCand[l])
			}
		}
	}
}
