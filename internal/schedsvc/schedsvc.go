// Package schedsvc is an energy-aware cluster scheduler that runs as a
// *client of the fleet*: it never computes a demand estimate or a
// placement cost itself. Per-task demand comes from task energy
// interfaces and per-(node, DVFS-level) cost from node energy interfaces,
// both registered fleet-wide as EIL source and queried over the wire
// (binary codec, /v1/evalbatch) through the consistent-hashing router —
// the paper's §1 scheduling vignettes turned into load on the PR 7/8
// production serving path.
//
// The scheduler scales to thousands of nodes and ~10^6 tasks per round
// because everything it asks the fleet is *canonical*:
//
//   - tasks are grouped into (class, phase) cohorts whose members are
//     interchangeable, so one demand query prices an entire cohort, and
//     the query's argument is the phase index reduced mod the class
//     period — across rounds the working set is classes × period keys,
//     which the fleet memo then serves without re-evaluation;
//   - candidate placements are priced per (node class, DVFS level,
//     demand bucket) with demands quantized to two significant digits,
//     so a whole scheduling round compiles into one deduplicated batch.
//
// Three policies share the same simulator and capacity ledger:
//
//   - PolicyUtilization is the status quo: an EWMA utilization proxy with
//     misfit escalation, packing onto the biggest boxes at their highest
//     operating point — no interface queries at all;
//   - PolicyInterface resolves declared demand and per-level energy from
//     the fleet and picks the cheapest feasible operating points;
//   - PolicyCarbon additionally reweights each node class's cost by its
//     grid region's time-varying carbon intensity, so placement shifts
//     between regions as the grid gets dirtier (per the LLM-inference
//     carbon simulation line of work).
//
// Everything is deterministic: cohorts, candidates, and ties are visited
// in sorted order, and Result.PlacementHash digests every placement
// decision so bit-identical repeat runs are checkable end to end.
package schedsvc

import (
	"context"
	"fmt"
	"sort"

	"energyclarity/internal/eisvc"
	"energyclarity/internal/energy"
	"energyclarity/internal/sched"
)

// OperatingPoint is one DVFS level of a node class: sustained throughput
// and the power drawn while executing at that level.
type OperatingPoint struct {
	CyclesPerSec float64
	ActiveW      energy.Watts
}

// NodeClass describes one homogeneous pool of cluster machines: its
// capacity ladder, idle power, pool size, and the grid region whose
// carbon intensity its sockets see.
type NodeClass struct {
	Name   string
	Region string
	Count  int
	IdleW  energy.Watts
	// Levels are the DVFS operating points, ascending by CyclesPerSec.
	Levels []OperatingPoint
}

// EnergyPerCycle returns the marginal joules per executed cycle at level
// l — the quantity an energy-aware placement minimizes. (Idle power is
// burned by the fixed pool regardless of placement, so the marginal cost
// of work is active-minus-idle power over throughput.)
func (nc NodeClass) EnergyPerCycle(l int) float64 {
	return float64(nc.Levels[l].ActiveW-nc.IdleW) / nc.Levels[l].CyclesPerSec
}

// TaskClass is a periodic per-task demand shape, in cycles per scheduling
// round: PeakLen rounds at PeakCycles followed by TroughLen rounds at
// TroughCycles. This is the program structure a task's energy interface
// can state exactly (the §1 transcoding argument), so the registered
// task_<name> interface answers demand_cycles(p) for any phase index p.
type TaskClass struct {
	Name         string
	PeakCycles   float64
	TroughCycles float64
	PeakLen      int
	TroughLen    int
	// RequestCycles is the static per-round resource request today's
	// placers see (the Kubernetes request): what PolicyUtilization
	// allocates before its usage signal escalates. Typically set between
	// trough and peak — the whole §1 problem is that one number cannot be
	// right for both.
	RequestCycles float64
}

// Period returns the demand cycle length in rounds.
func (tc TaskClass) Period() int { return tc.PeakLen + tc.TroughLen }

// TaskGroup is a cohort of N identical tasks: instances of one class,
// phase-shifted by Phase rounds. Cohorts are the unit of scheduling —
// members are interchangeable, so demand is resolved once per cohort and
// placement assigns node capacity to the cohort in bulk.
type TaskGroup struct {
	Class string
	Phase int
	N     int
}

// Config describes the cluster and workload a Scheduler manages.
type Config struct {
	Nodes  []NodeClass
	Tasks  []TaskClass
	Groups []TaskGroup
	// RoundSeconds is the scheduling round length (default 1s). It is
	// folded into the generated node interfaces, so changing it requires
	// re-registering.
	RoundSeconds float64
	// Margin over-provisions declared demand (ECV-style headroom), e.g.
	// 0.05 for 5%.
	Margin float64
	// Carbon is the per-region grid intensity signal; required by
	// PolicyCarbon, ignored by the others.
	Carbon CarbonTrace
	// BatchSize caps items per /v1/evalbatch call (default 1024).
	BatchSize int
}

func (c Config) withDefaults() Config {
	if c.RoundSeconds <= 0 {
		c.RoundSeconds = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1024
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 || len(c.Tasks) == 0 || len(c.Groups) == 0 {
		return fmt.Errorf("schedsvc: config needs node classes, task classes, and groups")
	}
	classes := map[string]TaskClass{}
	mangledTasks := map[string]bool{}
	for _, tc := range c.Tasks {
		if tc.Name == "" || tc.PeakLen <= 0 || tc.TroughLen <= 0 ||
			tc.PeakCycles < 0 || tc.TroughCycles < 0 {
			return fmt.Errorf("schedsvc: malformed task class %q", tc.Name)
		}
		// Dedup on the mangled name: it is the registered interface
		// identity, so "k-v" and "k_v" cannot coexist.
		if mangledTasks[identName(tc.Name)] {
			return fmt.Errorf("schedsvc: duplicate task class %q", tc.Name)
		}
		mangledTasks[identName(tc.Name)] = true
		classes[tc.Name] = tc
	}
	nodeNames := map[string]bool{}
	for _, nc := range c.Nodes {
		if nc.Name == "" || nc.Count < 1 || len(nc.Levels) == 0 {
			return fmt.Errorf("schedsvc: malformed node class %q", nc.Name)
		}
		if nodeNames[identName(nc.Name)] {
			return fmt.Errorf("schedsvc: duplicate node class %q", nc.Name)
		}
		nodeNames[identName(nc.Name)] = true
		for l, op := range nc.Levels {
			if op.CyclesPerSec <= 0 || op.ActiveW <= nc.IdleW {
				return fmt.Errorf("schedsvc: node class %q level %d malformed", nc.Name, l)
			}
			if l > 0 && op.CyclesPerSec <= nc.Levels[l-1].CyclesPerSec {
				return fmt.Errorf("schedsvc: node class %q levels not ascending", nc.Name)
			}
		}
	}
	for _, g := range c.Groups {
		tc, ok := classes[g.Class]
		if !ok {
			return fmt.Errorf("schedsvc: group references unknown task class %q", g.Class)
		}
		if g.N < 1 || g.Phase < 0 || g.Phase >= tc.Period() {
			return fmt.Errorf("schedsvc: malformed group %s/%d", g.Class, g.Phase)
		}
	}
	return nil
}

// TotalTasks returns the workload size (tasks placed per round).
func (c Config) TotalTasks() int {
	n := 0
	for _, g := range c.Groups {
		n += g.N
	}
	return n
}

// TotalNodes returns the cluster size.
func (c Config) TotalNodes() int {
	n := 0
	for _, nc := range c.Nodes {
		n += nc.Count
	}
	return n
}

// Policy selects how a scheduling round estimates demand and ranks
// candidate placements.
type Policy int

// The three placement policies.
const (
	// PolicyUtilization is the request/utilization status quo: EWMA of
	// observed usage with misfit escalation, biggest-box-first packing at
	// the top operating point, no fleet queries.
	PolicyUtilization Policy = iota
	// PolicyInterface resolves demand and cost through the fleet's energy
	// interfaces and fills the cheapest feasible operating points first.
	PolicyInterface
	// PolicyCarbon is PolicyInterface with per-region grid-intensity
	// weighting: it minimizes grams, not joules.
	PolicyCarbon
)

// String names the policy as it appears in tables.
func (p Policy) String() string {
	switch p {
	case PolicyUtilization:
		return "utilization-based"
	case PolicyInterface:
		return "interface-driven"
	case PolicyCarbon:
		return "carbon-aware"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// UsesFleet reports whether the policy resolves demand and cost through
// the fleet (false only for the status-quo baseline).
func (p Policy) UsesFleet() bool { return p != PolicyUtilization }

// FleetStats aggregates what the scheduler's queries cost the fleet.
type FleetStats struct {
	Batches     int // evalbatch round trips
	Items       int // items sent
	CacheServed int // items answered by memo, in-batch dedup, peer, or coalescing
	Errors      int // per-item failures (always fatal: surfaced as Run errors)
}

// Result summarizes one policy's multi-round scheduling run.
type Result struct {
	Policy string
	Rounds int
	// Placed counts task-placements (tasks × rounds that got capacity).
	Placed int64
	// Unplaced counts task-rounds that found no capacity anywhere.
	Unplaced int64
	// Energy is the cluster's total energy over the run (ground truth
	// from the simulator, idle floors included).
	Energy energy.Joules
	// CarbonGrams prices the same energy through each region's
	// time-varying intensity trace.
	CarbonGrams float64
	// UnmetCycles sums, over rounds, the cycles of demand still pending
	// at each round boundary (work late k rounds counts k times), and
	// DemandCycles the total demanded; their ratio is the QoS penalty.
	UnmetCycles  float64
	DemandCycles float64
	// PlacementHash digests every placement decision of the run;
	// bit-identical repeat runs must agree on it exactly.
	PlacementHash uint64
	// Fleet is the query-side cost of the run (zero for the baseline).
	Fleet FleetStats
}

// UnmetFraction returns backlog cycle-rounds per demanded cycle.
func (r Result) UnmetFraction() float64 {
	if r.DemandCycles == 0 {
		return 0
	}
	return r.UnmetCycles / r.DemandCycles
}

// Scheduler drives scheduling rounds against a fleet router.
type Scheduler struct {
	cfg     Config
	client  *eisvc.Client
	classes map[string]TaskClass
	// groups is cfg.Groups in canonical (class, phase) order.
	groups []TaskGroup
}

// New validates cfg and returns a scheduler that queries the fleet (or a
// single daemon) behind client. The client is used as configured —
// callers pick codec, retries, and timeouts.
func New(cfg Config, client *eisvc.Client) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{cfg: cfg, client: client, classes: map[string]TaskClass{}}
	for _, tc := range cfg.Tasks {
		s.classes[tc.Name] = tc
	}
	s.groups = append(s.groups, cfg.Groups...)
	sort.Slice(s.groups, func(i, j int) bool {
		if s.groups[i].Class != s.groups[j].Class {
			return s.groups[i].Class < s.groups[j].Class
		}
		return s.groups[i].Phase < s.groups[j].Phase
	})
	return s, nil
}

// Config returns the validated configuration (defaults applied).
func (s *Scheduler) Config() Config { return s.cfg }

// Client returns the fleet client the scheduler queries through.
func (s *Scheduler) Client() *eisvc.Client { return s.client }

// Register uploads the generated node and task energy interfaces to the
// fleet (one EIL source, registered through the router's mutation path,
// so the primary assigns versions and replicates). Call once per fleet;
// re-registering bumps versions and cold-starts the memo working set.
func (s *Scheduler) Register(ctx context.Context) error {
	if _, err := s.client.RegisterCtx(ctx, SourceEIL(s.cfg)); err != nil {
		return fmt.Errorf("schedsvc: register interfaces: %w", err)
	}
	return nil
}

// DemandRequests returns the canonical demand-query batch for round q:
// one demand_cycles(p) item per distinct (task class, phase index), in
// sorted order. This is exactly what a scheduling round sends first; it
// is exported so benchmarks and warmers can drive the wire path alone.
func (s *Scheduler) DemandRequests(q int) []eisvc.EvalRequest {
	type key struct {
		class string
		p     int
	}
	seen := map[key]bool{}
	var reqs []eisvc.EvalRequest
	for _, g := range s.groups {
		tc := s.classes[g.Class]
		k := key{g.Class, (q + g.Phase) % tc.Period()}
		if seen[k] {
			continue
		}
		seen[k] = true
		reqs = append(reqs, eisvc.EvalRequest{
			Interface: TaskInterfaceName(k.class),
			Method:    "demand_cycles",
			Args:      []any{float64(k.p)},
			Mode:      "expected",
		})
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Interface != reqs[j].Interface {
			return reqs[i].Interface < reqs[j].Interface
		}
		return reqs[i].Args[0].(float64) < reqs[j].Args[0].(float64)
	})
	return reqs
}

// evalBatch sends requests in BatchSize chunks and returns the means, in
// request order. Any per-item failure is fatal: a scheduler that cannot
// price a placement must say so, not place blind (the sched.Plan lesson).
func (s *Scheduler) evalBatch(ctx context.Context, reqs []eisvc.EvalRequest, st *FleetStats) ([]float64, error) {
	out := make([]float64, 0, len(reqs))
	for len(reqs) > 0 {
		n := len(reqs)
		if n > s.cfg.BatchSize {
			n = s.cfg.BatchSize
		}
		items, err := s.client.EvalBatchCtx(ctx, reqs[:n])
		if err != nil {
			return nil, fmt.Errorf("schedsvc: evalbatch: %w", err)
		}
		st.Batches++
		st.Items += n
		for i, it := range items {
			if it.Status != 200 || it.Dist == nil {
				st.Errors++
				return nil, fmt.Errorf("schedsvc: %s.%s: status %d: %s",
					reqs[i].Interface, reqs[i].Method, it.Status, it.Error)
			}
			if it.Cached || it.Deduped || it.Coalesced || it.Peer {
				st.CacheServed++
			}
			out = append(out, it.Dist.Mean)
		}
		reqs = reqs[n:]
	}
	return out, nil
}

// fetchDemands resolves each cohort's declared per-task demand for round
// q from the fleet, margin applied. Returned in s.groups order.
func (s *Scheduler) fetchDemands(ctx context.Context, q int, st *FleetStats) ([]float64, error) {
	reqs := s.DemandRequests(q)
	means, err := s.evalBatch(ctx, reqs, st)
	if err != nil {
		return nil, err
	}
	byKey := map[string]float64{}
	for i, r := range reqs {
		byKey[r.Interface+"/"+fmt.Sprint(r.Args[0])] = means[i]
	}
	out := make([]float64, len(s.groups))
	for i, g := range s.groups {
		tc := s.classes[g.Class]
		p := (q + g.Phase) % tc.Period()
		d, ok := byKey[TaskInterfaceName(g.Class)+"/"+fmt.Sprint(float64(p))]
		if !ok {
			return nil, fmt.Errorf("schedsvc: demand for %s phase %d missing from batch", g.Class, p)
		}
		out[i] = d * (1 + s.cfg.Margin)
	}
	return out, nil
}

// CostRequests returns the canonical candidate-pricing batch: for every
// (node class, DVFS level), the cost of a fully-busy round at that level
// and the class's idle round, in sorted order. The arguments never vary
// across rounds, so after the first round the fleet memo serves the
// whole batch without re-evaluating anything.
func (s *Scheduler) CostRequests() []eisvc.EvalRequest {
	var reqs []eisvc.EvalRequest
	for _, nc := range s.cfg.Nodes {
		name := NodeInterfaceName(nc.Name)
		reqs = append(reqs, eisvc.EvalRequest{
			Interface: name, Method: "idle", Mode: "expected",
		})
		for _, l := range sched.LevelIndices(len(nc.Levels)) {
			reqs = append(reqs, eisvc.EvalRequest{
				Interface: name,
				Method:    "cost",
				Args:      []any{nc.Levels[l].CyclesPerSec * s.cfg.RoundSeconds, float64(l)},
				Mode:      "expected",
			})
		}
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Interface != reqs[j].Interface {
			return reqs[i].Interface < reqs[j].Interface
		}
		if reqs[i].Method != reqs[j].Method {
			return reqs[i].Method < reqs[j].Method
		}
		return reqs[i].Args[1].(float64) < reqs[j].Args[1].(float64)
	})
	return reqs
}

// unitCosts holds the fleet's answers to CostRequests, reduced to the
// quantity placement ranks by: marginal joules per cycle at each
// (class, level), plus each class's idle-round joules.
type unitCosts struct {
	perCycle map[string][]float64 // class → per-level marginal J/cycle
	idle     map[string]float64   // class → idle J per node-round
}

// fetchCosts resolves candidate pricing from the fleet.
func (s *Scheduler) fetchCosts(ctx context.Context, st *FleetStats) (unitCosts, error) {
	reqs := s.CostRequests()
	means, err := s.evalBatch(ctx, reqs, st)
	if err != nil {
		return unitCosts{}, err
	}
	uc := unitCosts{perCycle: map[string][]float64{}, idle: map[string]float64{}}
	byIface := map[string]NodeClass{}
	for _, nc := range s.cfg.Nodes {
		byIface[NodeInterfaceName(nc.Name)] = nc
		uc.perCycle[nc.Name] = make([]float64, len(nc.Levels))
	}
	for i, r := range reqs {
		nc := byIface[r.Interface]
		if r.Method == "idle" {
			uc.idle[nc.Name] = means[i]
		}
	}
	for i, r := range reqs {
		if r.Method != "cost" {
			continue
		}
		nc := byIface[r.Interface]
		l := int(r.Args[1].(float64))
		cap := nc.Levels[l].CyclesPerSec * s.cfg.RoundSeconds
		// Busy-round joules minus the idle floor, per executed cycle.
		uc.perCycle[nc.Name][l] = (means[i] - uc.idle[nc.Name]) / cap
	}
	return uc, nil
}
