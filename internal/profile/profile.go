// Package profile implements the baseline the paper argues against (§2):
// black-box empirical power/energy modelling. A Model is fit by least
// squares from observed (features, measured energy) pairs — profiling —
// and predicts energy for new feature vectors.
//
// Such models "can miss important details that did not manifest during
// profiling or training" (§2). The E7 experiment shows exactly that:
// trained on short generations, the regression extrapolates badly to long
// ones (the KV cache makes per-token cost grow with position, which a
// linear feature model never saw), while the energy interface — which
// states the structure — stays accurate.
package profile

import (
	"fmt"
	"math"
)

// Model is a linear model y = w·x + b.
type Model struct {
	weights   []float64
	intercept float64
	nFeatures int
}

// Fit trains a linear model with intercept by least squares. It returns an
// error when the system is degenerate (too few samples, collinear
// features, ragged input).
func Fit(features [][]float64, ys []float64) (*Model, error) {
	if len(features) != len(ys) {
		return nil, fmt.Errorf("profile: %d feature rows vs %d observations", len(features), len(ys))
	}
	if len(features) == 0 {
		return nil, fmt.Errorf("profile: no training data")
	}
	k := len(features[0])
	if k == 0 {
		return nil, fmt.Errorf("profile: empty feature vectors")
	}
	// Augment with the intercept column.
	n := k + 1
	if len(features) < n {
		return nil, fmt.Errorf("profile: need at least %d samples for %d features", n, k)
	}
	xs := make([][]float64, len(features))
	for i, f := range features {
		if len(f) != k {
			return nil, fmt.Errorf("profile: ragged features (row %d)", i)
		}
		row := make([]float64, n)
		copy(row, f)
		row[k] = 1
		xs[i] = row
	}
	coef, err := solveNormal(xs, ys, n)
	if err != nil {
		return nil, err
	}
	return &Model{weights: coef[:k], intercept: coef[k], nFeatures: k}, nil
}

// Predict returns the model's estimate for x. It panics on a feature-count
// mismatch (caller bug).
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.nFeatures {
		panic(fmt.Sprintf("profile: %d features, model has %d", len(x), m.nFeatures))
	}
	y := m.intercept
	for i, w := range m.weights {
		y += w * x[i]
	}
	return y
}

// Weights returns a copy of the fitted weights (without intercept).
func (m *Model) Weights() []float64 {
	out := make([]float64, len(m.weights))
	copy(out, m.weights)
	return out
}

// Intercept returns the fitted intercept.
func (m *Model) Intercept() float64 { return m.intercept }

// R2 computes the coefficient of determination of the model on a dataset.
func (m *Model) R2(features [][]float64, ys []float64) (float64, error) {
	if len(features) != len(ys) || len(ys) == 0 {
		return 0, fmt.Errorf("profile: bad evaluation set")
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	ssRes, ssTot := 0.0, 0.0
	for i, f := range features {
		d := ys[i] - m.Predict(f)
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		// Constant target: R² is 1 when the model reproduces it (up to
		// numerical fitting noise) and 0 otherwise.
		if ssRes <= 1e-18*(1+mean*mean)*float64(len(ys)) {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}

// solveNormal solves the normal equations for n coefficients with column
// scaling and Gauss-Jordan elimination.
func solveNormal(xs [][]float64, ys []float64, n int) ([]float64, error) {
	scale := make([]float64, n)
	for _, x := range xs {
		for i := 0; i < n; i++ {
			if a := math.Abs(x[i]); a > scale[i] {
				scale[i] = a
			}
		}
	}
	for i, s := range scale {
		if s == 0 {
			return nil, fmt.Errorf("profile: feature %d constant at zero", i)
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
	}
	for r, x := range xs {
		for i := 0; i < n; i++ {
			m[i][n] += x[i] / scale[i] * ys[r]
			for j := 0; j < n; j++ {
				m[i][j] += x[i] / scale[i] * x[j] / scale[j]
			}
		}
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-24 {
			return nil, fmt.Errorf("profile: collinear features (column %d)", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i] / scale[i]
		if math.IsNaN(out[i]) || math.IsInf(out[i], 0) {
			return nil, fmt.Errorf("profile: non-finite solution")
		}
	}
	return out, nil
}
