package profile

import (
	"math"
	"testing"

	"energyclarity/internal/gpusim"
	"energyclarity/internal/nn"
	"energyclarity/internal/nvml"
)

func TestFitExactLinear(t *testing.T) {
	// y = 3x1 - 2x2 + 7.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 10; i++ {
		x := []float64{float64(i), float64(i * i % 5)}
		xs = append(xs, x)
		ys = append(ys, 3*x[0]-2*x[1]+7)
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	if math.Abs(w[0]-3) > 1e-9 || math.Abs(w[1]+2) > 1e-9 || math.Abs(m.Intercept()-7) > 1e-9 {
		t.Fatalf("fit w=%v b=%v", w, m.Intercept())
	}
	if r2, _ := m.R2(xs, ys); math.Abs(r2-1) > 1e-12 {
		t.Fatalf("R² = %v", r2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("underdetermined accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}, {1, 2}}, []float64{1, 2, 3}); err == nil {
		t.Error("ragged features accepted")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}); err == nil {
		t.Error("empty feature vector accepted")
	}
	// Collinear: second feature is 2× the first.
	var xs [][]float64
	var ys []float64
	for i := 1; i <= 5; i++ {
		xs = append(xs, []float64{float64(i), 2 * float64(i)})
		ys = append(ys, float64(i))
	}
	if _, err := Fit(xs, ys); err == nil {
		t.Error("collinear features accepted")
	}
}

func TestPredictPanicsOnWrongArity(t *testing.T) {
	m, err := Fit([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch accepted")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestR2DegenerateSets(t *testing.T) {
	m, err := Fit([][]float64{{1}, {2}, {3}}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.R2(nil, nil); err == nil {
		t.Error("empty evaluation set accepted")
	}
	// Constant target, perfect prediction.
	r2, err := m.R2([][]float64{{1}, {1}}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 1 {
		t.Errorf("constant-target R² = %v, want 1", r2)
	}
}

// TestExtrapolationFailureOnGPT2 is E7 in miniature: a regression trained
// on short generations underestimates long ones, because per-token cost
// grows with KV-cache length — structure the black-box model never saw.
func TestExtrapolationFailureOnGPT2(t *testing.T) {
	gpu := gpusim.NewGPU(gpusim.RTX4090(), 30)
	eng, err := nn.NewEngine(nn.GPT2Small(), gpu)
	if err != nil {
		t.Fatal(err)
	}
	meter := nvml.NewMeter(gpu)
	measure := func(tokens int) float64 {
		return float64(meter.Measure(func() {
			if _, err := eng.Generate(16, tokens); err != nil {
				t.Fatal(err)
			}
		}))
	}
	// Train on 5..50 tokens: energy vs token count.
	var xs [][]float64
	var ys []float64
	for tok := 5; tok <= 50; tok += 5 {
		xs = append(xs, []float64{float64(tok)})
		ys = append(ys, measure(tok))
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// In-distribution it interpolates fine.
	in := measure(30)
	if rel := math.Abs(m.Predict([]float64{30})-in) / in; rel > 0.05 {
		t.Fatalf("in-distribution error %.3f", rel)
	}
	// Out of distribution it must underpredict by a clear margin (the
	// attention term is quadratic in total tokens).
	out := measure(600)
	pred := m.Predict([]float64{600})
	if pred >= out*0.97 {
		t.Fatalf("expected extrapolation shortfall: predicted %v vs measured %v", pred, out)
	}
}
