package verify

import (
	"fmt"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/energy"
	"energyclarity/internal/gpusim"
	"energyclarity/internal/nn"
	"energyclarity/internal/nvml"
)

// linIface returns an interface whose method f(n) costs k*n joules, with
// an optional ECV adding variance.
func linIface(name string, k float64, ecvP float64) *core.Interface {
	i := core.New(name)
	if ecvP > 0 {
		i.MustECV(core.BoolECV("hot", ecvP, ""))
	}
	i.MustMethod(core.Method{Name: "f", Params: []string{"n"}, Body: func(c *core.Call) energy.Joules {
		e := energy.Joules(k * c.Num(0))
		if ecvP > 0 && c.ECVBool("hot") {
			e *= 2
		}
		return e
	}})
	return i
}

func inputs(ns ...float64) [][]core.Value {
	out := make([][]core.Value, len(ns))
	for i, n := range ns {
		out[i] = []core.Value{core.Num(n)}
	}
	return out
}

func TestRefinesAccepts(t *testing.T) {
	impl := linIface("impl", 1, 0.5) // worst case 2n
	spec := linIface("spec", 3, 0)   // envelope 3n
	rep, err := Refines(impl, spec, "f", inputs(1, 10, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Checked != 3 {
		t.Fatalf("refinement rejected: %+v", rep)
	}
}

func TestRefinesFlagsViolations(t *testing.T) {
	impl := linIface("impl", 2, 0.5) // worst case 4n
	spec := linIface("spec", 3, 0)
	rep, err := Refines(impl, spec, "f", inputs(1, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Violations) != 2 {
		t.Fatalf("violations missed: %+v", rep)
	}
	v := rep.Violations[0]
	if v.Impl <= v.Spec {
		t.Fatalf("violation fields wrong: %+v", v)
	}
}

func TestRefinesSlack(t *testing.T) {
	impl := linIface("impl", 1.05, 0)
	spec := linIface("spec", 1, 0)
	rep, err := Refines(impl, spec, "f", inputs(10), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatal("5% excess rejected under 10% slack")
	}
	rep, err = Refines(impl, spec, "f", inputs(10), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("5% excess accepted under 1% slack")
	}
}

func TestRefinesErrors(t *testing.T) {
	good := linIface("x", 1, 0)
	if _, err := Refines(nil, good, "f", nil, 0); err == nil {
		t.Fatal("nil impl accepted")
	}
	if _, err := Refines(good, nil, "f", nil, 0); err == nil {
		t.Fatal("nil spec accepted")
	}
	if _, err := Refines(good, good, "f", nil, -1); err == nil {
		t.Fatal("negative slack accepted")
	}
	if _, err := Refines(good, good, "nope", inputs(1), 0); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestFindEnergyBugsCleanSystem(t *testing.T) {
	cases := []Case{{
		Name:      "clean",
		Predicted: func() (energy.Joules, error) { return 100, nil },
		Measured:  func() (energy.Joules, error) { return 101, nil },
	}}
	rep, err := FindEnergyBugs(cases, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean system flagged: %+v", rep)
	}
}

func TestFindEnergyBugsFlagsDivergence(t *testing.T) {
	cases := []Case{{
		Name:      "buggy",
		Predicted: func() (energy.Joules, error) { return 100, nil },
		Measured:  func() (energy.Joules, error) { return 150, nil },
	}}
	rep, err := FindEnergyBugs(cases, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.Divergences[0].RelErr < 0.3 {
		t.Fatalf("divergence missed: %+v", rep)
	}
}

func TestFindEnergyBugsErrors(t *testing.T) {
	if _, err := FindEnergyBugs(nil, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := FindEnergyBugs([]Case{{Name: "half"}}, 0.1); err == nil {
		t.Fatal("missing probes accepted")
	}
	failing := []Case{{
		Name:      "err",
		Predicted: func() (energy.Joules, error) { return 0, fmt.Errorf("boom") },
		Measured:  func() (energy.Joules, error) { return 0, nil },
	}}
	if _, err := FindEnergyBugs(failing, 0.1); err == nil {
		t.Fatal("probe error swallowed")
	}
}

func TestResidualSignedAndGuarded(t *testing.T) {
	cases := []struct {
		pred, meas energy.Joules
		want       float64
	}{
		{100, 100, 0},
		{100, 105, 0.05},
		{100, 95, -0.05},
		{0, 10, 1},   // unbounded over-consumption caps at 100%
		{0, -10, -1}, // and symmetrically below
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := Residual(c.pred, c.meas); got != c.want {
			t.Errorf("Residual(%v, %v) = %v, want %v", c.pred, c.meas, got, c.want)
		}
	}
}

// constCases builds probes where the measured energy is the prediction
// scaled per-case: scale 1.05 models a device consuming 5% extra.
func constCases(preds []float64, scales []float64) []Case {
	out := make([]Case, len(preds))
	for i := range preds {
		p, s := preds[i], scales[i]
		out[i] = Case{
			Name:      fmt.Sprintf("case-%d", i),
			Predicted: func() (energy.Joules, error) { return energy.Joules(p), nil },
			Measured:  func() (energy.Joules, error) { return energy.Joules(p * s), nil },
		}
	}
	return out
}

// TestUniformShiftIsDriftNotBug covers the drift-vs-bug boundary: a device
// where *every* input costs 6% more than predicted has drifted — the
// §4.2 classification must not call that an input-dependent energy bug.
func TestUniformShiftIsDriftNotBug(t *testing.T) {
	cases := constCases(
		[]float64{10, 50, 200, 1000},
		[]float64{1.06, 1.06, 1.061, 1.059})
	rep, err := FindEnergyBugs(cases, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("6% shift not flagged at 2% tolerance")
	}
	shift, uniform := rep.UniformShift(0.02)
	if !uniform {
		t.Fatalf("uniformly shifted device classified as input-dependent bug: %+v", rep)
	}
	if shift < 0.055 || shift > 0.065 {
		t.Fatalf("shift estimate %v, want ~0.06", shift)
	}
}

// TestInputDependentDivergenceIsABug is the other side of the boundary:
// one input class diverging while the rest match is an energy bug, and
// UniformShift must refuse to explain it away as drift.
func TestInputDependentDivergenceIsABug(t *testing.T) {
	cases := constCases(
		[]float64{10, 50, 200, 1000},
		[]float64{1.0, 1.0, 1.0, 1.40}) // only the large input misbehaves
	rep, err := FindEnergyBugs(cases, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 1 {
		t.Fatalf("want exactly the large-input divergence: %+v", rep)
	}
	if _, uniform := rep.UniformShift(0.02); uniform {
		t.Fatal("partial divergence classified as uniform drift")
	}
}

// TestOpposingShiftsAreABug: all inputs diverge but in different
// directions — that is input-dependent, not a calibration offset.
func TestOpposingShiftsAreABug(t *testing.T) {
	cases := constCases(
		[]float64{10, 50},
		[]float64{1.30, 0.70})
	rep, err := FindEnergyBugs(cases, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 2 {
		t.Fatalf("want both divergences: %+v", rep)
	}
	if _, uniform := rep.UniformShift(0.05); uniform {
		t.Fatal("opposing residuals classified as uniform drift")
	}
}

func TestUniformShiftCleanReport(t *testing.T) {
	rep, err := FindEnergyBugs(constCases([]float64{10}, []float64{1.0}), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, uniform := rep.UniformShift(0.02); uniform {
		t.Fatal("clean report reported a shift")
	}
}

// TestUniformShiftOnRealDriftedDevice runs the boundary check against a
// real gpusim device with injected aging: every probe shifts together, so
// the report must classify it as drift, with the shift estimate near the
// injected fraction.
func TestUniformShiftOnRealDriftedDevice(t *testing.T) {
	spec := gpusim.RTX4090()
	g := gpusim.NewGPU(spec, 30)
	hw := coefFor(t, g)
	// Calibrate the inline datasheet interface to this device first so the
	// only post-injection divergence is the aging itself: scale by the
	// device's observed pre-drift residual per event class.
	const frac = 0.08
	g.InjectAging(frac)

	meter := nvml.NewMeter(g)
	kernels := []gpusim.Kernel{
		{Name: "small", Instructions: 2e8, L1Accesses: 2e7, WorkingSet: 4 << 20, Reuse: 4},
		{Name: "medium", Instructions: 1e9, L1Accesses: 1e8, WorkingSet: 32 << 20, Reuse: 8},
		{Name: "large", Instructions: 4e9, L1Accesses: 4e8, WorkingSet: 128 << 20, Reuse: 8},
	}
	var cases []Case
	for _, k := range kernels {
		k := k
		cases = append(cases, Case{
			Name: k.Name,
			Predicted: func() (energy.Joules, error) {
				tr := spec.SpecTraffic(k)
				dur := spec.SpecDuration(k, tr)
				return hw.ExpectedJoules("kernel",
					core.Num(k.Instructions), core.Num(tr.L1Wavefronts),
					core.Num(tr.L2Sectors), core.Num(tr.VRAMSectors), core.Num(dur))
			},
			Measured: func() (energy.Joules, error) {
				return meter.Measure(func() { g.Launch(k) }), nil
			},
		})
	}
	rep, err := FindEnergyBugs(cases, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("8%% aged device passed a 4%% bug check: %+v", rep)
	}
	shift, uniform := rep.UniformShift(0.06)
	if !uniform {
		t.Fatalf("aged device classified as input-dependent bug: %+v", rep.Divergences)
	}
	if shift < 0.02 {
		t.Fatalf("shift estimate %v too small for %v aging", shift, frac)
	}
}

// TestEnergyBugOnRealStack injects a real energy bug — the GPT-2 engine
// silently running with a doubled KV path (a "cache disabled" bug) — and
// checks the §4.2 loop catches it while the healthy system passes.
func TestEnergyBugOnRealStack(t *testing.T) {
	spec := gpusim.RTX4090()
	build := func(seed int64) (*gpusim.GPU, *core.Interface) {
		g := gpusim.NewGPU(spec, seed)
		coef := coefFor(t, g)
		iface, err := nn.EnergyInterface(nn.GPT2Small(), spec, coef)
		if err != nil {
			t.Fatal(err)
		}
		return g, iface
	}

	// Healthy: measured matches prediction.
	gHealthy, iface := build(30)
	engH, err := nn.NewEngine(nn.GPT2Small(), gHealthy)
	if err != nil {
		t.Fatal(err)
	}
	meterH := nvml.NewMeter(gHealthy)
	healthy := Case{
		Name: "healthy-generate-50",
		Predicted: func() (energy.Joules, error) {
			return iface.ExpectedJoules("generate", core.Num(16), core.Num(50))
		},
		Measured: func() (energy.Joules, error) {
			return meterH.Measure(func() { engH.Generate(16, 50) }), nil //nolint:errcheck
		},
	}

	// Buggy: the service runs generation twice (a retry bug) but the
	// interface predicts one run.
	gBuggy, iface2 := build(30)
	engB, err := nn.NewEngine(nn.GPT2Small(), gBuggy)
	if err != nil {
		t.Fatal(err)
	}
	meterB := nvml.NewMeter(gBuggy)
	buggy := Case{
		Name: "retry-bug-generate-50",
		Predicted: func() (energy.Joules, error) {
			return iface2.ExpectedJoules("generate", core.Num(16), core.Num(50))
		},
		Measured: func() (energy.Joules, error) {
			return meterB.Measure(func() {
				engB.Generate(16, 50) //nolint:errcheck
				engB.Generate(16, 50) //nolint:errcheck
			}), nil
		},
	}

	rep, err := FindEnergyBugs([]Case{healthy, buggy}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 1 || rep.Divergences[0].Name != "retry-bug-generate-50" {
		t.Fatalf("bug detection wrong: %+v", rep)
	}
}

func coefFor(t *testing.T, g *gpusim.GPU) *core.Interface {
	t.Helper()
	// Lightweight inline calibration avoids an import cycle on microbench
	// in this test's hot path; datasheet coefficients are accurate enough
	// for a 10% bug tolerance.
	s := g.Spec()
	hw := core.New("gpu_" + s.Name)
	per := func(name string, e energy.Joules) {
		hw.MustMethod(core.Method{Name: name, Params: []string{"n"},
			Body: func(c *core.Call) energy.Joules { return e * energy.Joules(c.Num(0)) }})
	}
	per("instr", s.NomInstrEnergy)
	per("l1", s.NomL1Energy)
	per("l2", s.NomL2Energy)
	per("vram", s.NomVRAMEnergy)
	static := s.NomStaticPower
	hw.MustMethod(core.Method{Name: "static", Params: []string{"seconds"},
		Body: func(c *core.Call) energy.Joules { return static.OverSeconds(c.Num(0)) }})
	hw.MustMethod(core.Method{Name: "kernel", Params: []string{"instr", "l1", "l2", "vram", "seconds"},
		Body: func(c *core.Call) energy.Joules {
			return c.Self("instr", core.Num(c.Num(0))) +
				c.Self("l1", core.Num(c.Num(1))) +
				c.Self("l2", core.Num(c.Num(2))) +
				c.Self("vram", core.Num(c.Num(3))) +
				c.Self("static", core.Num(c.Num(4)))
		}})
	return hw
}

func TestConstantEnergyAcceptsConstTime(t *testing.T) {
	konst := core.New("aes").MustMethod(core.Method{
		Name: "encrypt", Params: []string{"block"},
		Body: func(c *core.Call) energy.Joules { return 42 },
	})
	rep, err := ConstantEnergy(konst, "encrypt", inputs(0, 1, 255, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Constant(0) || rep.Spread != 0 {
		t.Fatalf("constant method rejected: %+v", rep)
	}
}

func TestConstantEnergyRejectsDataDependent(t *testing.T) {
	leaky := core.New("rsa").MustMethod(core.Method{
		Name: "encrypt", Params: []string{"key_bits"},
		Body: func(c *core.Call) energy.Joules {
			// Energy depends on the number of set key bits: a side channel.
			return energy.Joules(1 + c.Num(0))
		},
	})
	rep, err := ConstantEnergy(leaky, "encrypt", inputs(0, 8, 64))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Constant(0.01) {
		t.Fatalf("leaky method accepted: %+v", rep)
	}
}

func TestConstantEnergyCountsECVVariance(t *testing.T) {
	// Even with identical inputs, ECV-dependent energy is not constant.
	i := linIface("x", 1, 0.5)
	rep, err := ConstantEnergy(i, "f", inputs(10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Constant(0.01) {
		t.Fatalf("ECV-variable method accepted: %+v", rep)
	}
}

func TestConstantEnergyErrors(t *testing.T) {
	if _, err := ConstantEnergy(nil, "f", inputs(1)); err == nil {
		t.Fatal("nil interface accepted")
	}
	i := linIface("x", 1, 0)
	if _, err := ConstantEnergy(i, "f", nil); err == nil {
		t.Fatal("no inputs accepted")
	}
	if _, err := ConstantEnergy(i, "nope", inputs(1)); err == nil {
		t.Fatal("unknown method accepted")
	}
}
