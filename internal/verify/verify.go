// Package verify implements the checking half of the paper's workflows:
//
//   - Refines: §4.1's interface→implementation direction — check that a
//     derived (accurate) interface stays within a spec (upper-bound)
//     interface's envelope on every probed input;
//   - FindEnergyBugs: §4.2's testing loop — "running the layer with well
//     chosen inputs, measuring the consumed energy (e.g. with Intel RAPL),
//     and comparing it to the interface's prediction; divergences would
//     then be flagged as energy bugs";
//   - ConstantEnergy: §4.1's side-channel constraint — crypto code must
//     consume input-independent energy, which "a mere upper bound is not
//     sufficient" to express.
package verify

import (
	"fmt"

	"energyclarity/internal/core"
	"energyclarity/internal/energy"
)

// Violation is one input whose implementation-level worst case exceeds the
// spec's worst-case envelope.
type Violation struct {
	Input []core.Value
	Impl  energy.Joules
	Spec  energy.Joules
}

// RefinementReport summarizes a Refines run.
type RefinementReport struct {
	Method     string
	Checked    int
	Violations []Violation
}

// OK reports whether every probed input respected the envelope.
func (r *RefinementReport) OK() bool { return len(r.Violations) == 0 }

// Refines checks that, for each probe input, the implementation
// interface's worst-case energy does not exceed the spec interface's
// worst-case energy by more than slack (relative, e.g. 0.01 for 1%).
// Both interfaces must expose the method; evaluation errors abort.
func Refines(impl, spec *core.Interface, method string, inputs [][]core.Value, slack float64) (*RefinementReport, error) {
	if impl == nil || spec == nil {
		return nil, fmt.Errorf("verify: nil interface")
	}
	if slack < 0 {
		return nil, fmt.Errorf("verify: negative slack")
	}
	rep := &RefinementReport{Method: method}
	for _, in := range inputs {
		iw, err := impl.WorstCaseJoules(method, in...)
		if err != nil {
			return nil, fmt.Errorf("verify: impl %s: %w", impl.Name(), err)
		}
		sw, err := spec.WorstCaseJoules(method, in...)
		if err != nil {
			return nil, fmt.Errorf("verify: spec %s: %w", spec.Name(), err)
		}
		rep.Checked++
		if float64(iw) > float64(sw)*(1+slack) {
			rep.Violations = append(rep.Violations, Violation{Input: in, Impl: iw, Spec: sw})
		}
	}
	return rep, nil
}

// Residual is the signed relative prediction error (measured−predicted)
// divided by the prediction: positive when the device consumed more than
// the interface promised. This is the statistic both FindEnergyBugs and
// the internal/drift detectors accumulate; keeping it in one place keeps
// "what counts as divergence" consistent between offline bug hunts and
// the online monitor. A zero prediction with a nonzero measurement is an
// unbounded divergence, reported as ±1 (100%); 0/0 is a perfect match.
func Residual(predicted, measured energy.Joules) float64 {
	if predicted == 0 {
		switch {
		case measured > 0:
			return 1
		case measured < 0:
			return -1
		default:
			return 0
		}
	}
	return float64(measured-predicted) / float64(predicted)
}

// Case is one energy-bug probe: a predicted energy (from the interface)
// and a measured energy (from running the implementation under a meter).
type Case struct {
	Name      string
	Predicted func() (energy.Joules, error)
	Measured  func() (energy.Joules, error)
}

// Divergence is one flagged energy bug.
type Divergence struct {
	Name      string
	Predicted energy.Joules
	Measured  energy.Joules
	RelErr    float64
	// Residual is the signed relative error (see Residual); RelErr is its
	// magnitude.
	Residual float64
}

// BugReport summarizes a FindEnergyBugs run.
type BugReport struct {
	Checked     int
	Divergences []Divergence
}

// OK reports whether no case diverged beyond tolerance.
func (r *BugReport) OK() bool { return len(r.Divergences) == 0 }

// UniformShift distinguishes §4.2 energy bugs from device drift. If every
// probed case diverged and their signed residuals agree within tol of one
// another, the device as a whole has shifted — a calibration problem, not
// an input-dependent energy bug — and UniformShift returns the mean
// residual with uniform=true. If only some cases diverged, or the
// divergent residuals disagree in size or sign, the divergence depends on
// the input and stays classified as an energy bug (uniform=false).
func (r *BugReport) UniformShift(tol float64) (shift float64, uniform bool) {
	if len(r.Divergences) == 0 || len(r.Divergences) < r.Checked {
		return 0, false
	}
	min, max := r.Divergences[0].Residual, r.Divergences[0].Residual
	for _, d := range r.Divergences {
		shift += d.Residual
		if d.Residual < min {
			min = d.Residual
		}
		if d.Residual > max {
			max = d.Residual
		}
	}
	shift /= float64(len(r.Divergences))
	if max-min > tol {
		return shift, false
	}
	return shift, true
}

// FindEnergyBugs evaluates every case and flags those whose measured
// energy diverges from the prediction by more than tol (relative).
func FindEnergyBugs(cases []Case, tol float64) (*BugReport, error) {
	if tol <= 0 {
		return nil, fmt.Errorf("verify: non-positive tolerance")
	}
	rep := &BugReport{}
	for _, c := range cases {
		if c.Predicted == nil || c.Measured == nil {
			return nil, fmt.Errorf("verify: case %q missing a probe", c.Name)
		}
		pred, err := c.Predicted()
		if err != nil {
			return nil, fmt.Errorf("verify: case %q predict: %w", c.Name, err)
		}
		meas, err := c.Measured()
		if err != nil {
			return nil, fmt.Errorf("verify: case %q measure: %w", c.Name, err)
		}
		rep.Checked++
		if rel := energy.RelativeError(pred, meas); rel > tol {
			rep.Divergences = append(rep.Divergences, Divergence{
				Name: c.Name, Predicted: pred, Measured: meas, RelErr: rel,
				Residual: Residual(pred, meas),
			})
		}
	}
	return rep, nil
}

// ConstReport summarizes a ConstantEnergy check.
type ConstReport struct {
	Method   string
	Checked  int
	Min, Max energy.Joules
	// Spread is (Max-Min)/Max, 0 for a perfectly constant method.
	Spread float64
}

// Constant reports whether the spread stayed within tol.
func (r *ConstReport) Constant(tol float64) bool { return r.Spread <= tol }

// ConstantEnergy checks whether a method's energy is independent of both
// its inputs and its ECVs: it evaluates the full range (best case to worst
// case) for every probe input and reports the global spread. Crypto-grade
// constant energy means Spread == 0 across all secret-dependent inputs.
func ConstantEnergy(iface *core.Interface, method string, inputs [][]core.Value) (*ConstReport, error) {
	if iface == nil {
		return nil, fmt.Errorf("verify: nil interface")
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("verify: no probe inputs")
	}
	rep := &ConstReport{Method: method}
	first := true
	for _, in := range inputs {
		lo, err := iface.Eval(method, in, core.BestCase())
		if err != nil {
			return nil, fmt.Errorf("verify: %s: %w", iface.Name(), err)
		}
		hi, err := iface.Eval(method, in, core.WorstCase())
		if err != nil {
			return nil, fmt.Errorf("verify: %s: %w", iface.Name(), err)
		}
		rep.Checked++
		if first || energy.Joules(lo.Min()) < rep.Min {
			rep.Min = energy.Joules(lo.Min())
		}
		if first || energy.Joules(hi.Max()) > rep.Max {
			rep.Max = energy.Joules(hi.Max())
		}
		first = false
	}
	if rep.Max > 0 {
		rep.Spread = float64(rep.Max-rep.Min) / float64(rep.Max)
	}
	return rep, nil
}
