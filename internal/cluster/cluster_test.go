package cluster

import (
	"math"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/energy"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Machine.ExecPerSec = 0
	if bad.Validate() == nil {
		t.Error("zero exec rate accepted")
	}
	bad = good
	bad.SyncCost = -1
	if bad.Validate() == nil {
		t.Error("negative sync cost accepted")
	}
	bad = good
	bad.CoverageScale = 0
	if bad.Validate() == nil {
		t.Error("zero coverage scale accepted")
	}
}

func TestCoverageRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	for _, target := range []float64{0.5, 0.9, 0.95} {
		execs, err := cfg.ExecsForCoverage(target)
		if err != nil {
			t.Fatal(err)
		}
		if got := cfg.Coverage(execs); math.Abs(got-target) > 1e-12 {
			t.Fatalf("coverage round trip %v -> %v", target, got)
		}
	}
	if _, err := cfg.ExecsForCoverage(1.0); err == nil {
		t.Fatal("coverage 1.0 accepted (requires infinite executions)")
	}
	if _, err := cfg.ExecsForCoverage(-0.1); err == nil {
		t.Fatal("negative coverage accepted")
	}
	if cfg.Coverage(0) != 0 || cfg.Coverage(-5) != 0 {
		t.Fatal("coverage of no work should be 0")
	}
}

func TestCoverageDiminishingReturns(t *testing.T) {
	cfg := DefaultConfig()
	e90, _ := cfg.ExecsForCoverage(0.90)
	e95, _ := cfg.ExecsForCoverage(0.95)
	e99, _ := cfg.ExecsForCoverage(0.99)
	if !(e95-e90 > 0 && e99-e95 > e95-e90) {
		t.Fatalf("marginal executions not growing: %v %v %v", e90, e95, e99)
	}
}

func TestDeployDeterministicAndValidated(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Deploy(cfg, 8, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Deploy(cfg, 8, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Deploy not deterministic")
	}
	if _, err := Deploy(cfg, 0, 0.95, 7); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := Deploy(cfg, 4, 1.5, 7); err == nil {
		t.Fatal("bad target accepted")
	}
}

func TestEnergyHasInteriorOptimum(t *testing.T) {
	cfg := DefaultConfig()
	iface, err := Interface(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bestN, _, err := OptimalFleet(iface, 64, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if bestN <= 1 || bestN >= 64 {
		t.Fatalf("optimum %d is at the boundary; model has no trade-off", bestN)
	}
	// Energy at the optimum must beat both extremes clearly.
	e := func(n int) float64 {
		j, err := iface.ExpectedJoules("campaign", core.Num(float64(n)), core.Num(0.95))
		if err != nil {
			t.Fatal(err)
		}
		return float64(j)
	}
	if !(e(bestN) < e(1) && e(bestN) < e(64)) {
		t.Fatalf("optimum %d not better than extremes: %v vs %v / %v",
			bestN, e(bestN), e(1), e(64))
	}
}

func TestInterfaceMatchesDeployment(t *testing.T) {
	cfg := DefaultConfig()
	iface, err := Interface(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 8, 32} {
		pred, err := iface.ExpectedJoules("campaign", core.Num(float64(n)), core.Num(0.9))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Deploy(cfg, n, 0.9, 123)
		if err != nil {
			t.Fatal(err)
		}
		rel := energy.RelativeError(pred, got.Energy)
		// Hidden per-machine deviation is ±4%; fleet-level error must stay
		// within a few percent.
		if rel > 0.08 {
			t.Fatalf("n=%d: interface off by %.3f", n, rel)
		}
	}
}

func TestInterfaceAgreesWithGroundTruthOptimum(t *testing.T) {
	cfg := DefaultConfig()
	iface, err := Interface(cfg)
	if err != nil {
		t.Fatal(err)
	}
	predictedN, _, err := OptimalFleet(iface, 48, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	trueN, _, _, err := TrialAndError(cfg, 48, 0.95, 99)
	if err != nil {
		t.Fatal(err)
	}
	if d := predictedN - trueN; d < -3 || d > 3 {
		t.Fatalf("interface optimum %d far from measured optimum %d", predictedN, trueN)
	}
}

func TestTrialAndErrorBurnsOrdersOfMagnitudeMore(t *testing.T) {
	cfg := DefaultConfig()
	iface, err := Interface(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, bestE, err := OptimalFleet(iface, 48, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	_, _, spent, err := TrialAndError(cfg, 48, 0.95, 99)
	if err != nil {
		t.Fatal(err)
	}
	// The search spends at least 10 optimal campaigns' worth of energy —
	// §1's irony: "this trial-and-error process could consume more energy
	// than it saves".
	if spent < 10*bestE {
		t.Fatalf("trial and error spent %v, expected ≫ %v", spent, bestE)
	}
}

func TestMarginalCoverageEnergy(t *testing.T) {
	cfg := DefaultConfig()
	iface, err := Interface(cfg)
	if err != nil {
		t.Fatal(err)
	}
	marg, err := iface.ExpectedJoules("marginal", core.Num(16), core.Num(0.90), core.Num(0.95))
	if err != nil {
		t.Fatal(err)
	}
	e90, err := iface.ExpectedJoules("campaign", core.Num(16), core.Num(0.90))
	if err != nil {
		t.Fatal(err)
	}
	e95, err := iface.ExpectedJoules("campaign", core.Num(16), core.Num(0.95))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(marg-(e95-e90))) > 1e-9*float64(e95) {
		t.Fatalf("marginal %v != %v", marg, e95-e90)
	}
	// 90→95 doubles required executions (ln20/ln10 ≈ 1.3 — actually the
	// delta is ln2·scale): marginal must be substantial.
	if marg < e90*0.2 {
		t.Fatalf("marginal energy %v implausibly small vs %v", marg, e90)
	}
	if _, err := iface.ExpectedJoules("marginal", core.Num(16), core.Num(0.95), core.Num(0.90)); err == nil {
		t.Fatal("decreasing coverage accepted")
	}
}

func TestInterfaceArgumentValidation(t *testing.T) {
	iface, err := Interface(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iface.ExpectedJoules("campaign", core.Num(0), core.Num(0.9)); err == nil {
		t.Fatal("zero fleet accepted")
	}
	if _, err := iface.ExpectedJoules("campaign", core.Num(2.5), core.Num(0.9)); err == nil {
		t.Fatal("fractional fleet accepted")
	}
	if _, err := iface.ExpectedJoules("campaign", core.Num(4), core.Num(1)); err == nil {
		t.Fatal("coverage 1.0 accepted")
	}
	if _, _, err := OptimalFleet(iface, 0, 0.9); err == nil {
		t.Fatal("maxN 0 accepted")
	}
	if _, _, _, err := TrialAndError(DefaultConfig(), 0, 0.9, 1); err == nil {
		t.Fatal("trial maxN 0 accepted")
	}
}

func TestDurationMethod(t *testing.T) {
	cfg := DefaultConfig()
	iface, err := Interface(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := iface.ExpectedJoules("duration", core.Num(8), core.Num(0.9))
	if err != nil {
		t.Fatal(err)
	}
	d16, err := iface.ExpectedJoules("duration", core.Num(16), core.Num(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if d16 >= d8 {
		t.Fatalf("more machines should finish faster: %v vs %v", d16, d8)
	}
}
