// Package cluster models a ClusterFuzz-style fuzzing fleet, the paper's
// opening scenario (§1): "What is the optimal number of machines to deploy
// to minimize energy consumption while achieving 95% testing coverage?"
// and "How much additional energy is required to increase coverage from
// 90% to 95% using the same number of machines?"
//
// The model has the structure that makes those questions non-trivial:
//
//   - coverage saturates with total executions (diminishing returns), so
//     higher targets cost disproportionately more;
//   - corpus-synchronization overhead grows with fleet size, so adding
//     machines wastes marginal work;
//   - shared infrastructure (coordinator, storage, network) burns power for
//     the whole campaign duration, so too-small fleets waste energy on
//     wall-clock time.
//
// The trade-off yields an interior energy-optimal fleet size. The package
// provides both the ground-truth simulator (Deploy — machines have hidden
// per-unit deviations) and the IaC-derived energy interface (Interface)
// that answers the questions without deploying anything.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"energyclarity/internal/core"
	"energyclarity/internal/energy"
)

// MachineSpec is the datasheet of one fuzzing machine type.
type MachineSpec struct {
	Name       string
	ExecPerSec float64      // fuzz-target executions per second
	ActiveW    energy.Watts // power while fuzzing
	// Deviation bounds the hidden per-machine spread of both figures.
	Deviation float64
}

// DefaultMachine returns the fleet's standard worker: a 16-core cloud VM.
func DefaultMachine() MachineSpec {
	return MachineSpec{
		Name:       "n2-standard-16",
		ExecPerSec: 12000,
		ActiveW:    210,
		Deviation:  0.04,
	}
}

// Config is the campaign configuration — what an IaC file declares.
type Config struct {
	Machine MachineSpec
	// InfraPower is the shared coordinator/storage/network power burned for
	// the campaign's entire duration regardless of fleet size.
	InfraPower energy.Watts
	// SyncCost is the per-extra-machine efficiency loss: with n machines
	// each contributes ExecPerSec/(1+SyncCost*(n-1)) (corpus merging,
	// dedup, scheduling friction).
	SyncCost float64
	// CoverageScale sets the coverage curve: coverage(execs) =
	// 1 - exp(-execs/CoverageScale). Reaching 95% costs ln(20)× scale.
	CoverageScale float64
}

// DefaultConfig returns the E1 campaign configuration.
func DefaultConfig() Config {
	return Config{
		Machine:       DefaultMachine(),
		InfraPower:    900,
		SyncCost:      0.035,
		CoverageScale: 6e9,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Machine.ExecPerSec <= 0 || c.Machine.ActiveW <= 0:
		return fmt.Errorf("cluster: malformed machine spec")
	case c.InfraPower < 0 || c.SyncCost < 0:
		return fmt.Errorf("cluster: negative overhead parameters")
	case c.CoverageScale <= 0:
		return fmt.Errorf("cluster: non-positive coverage scale")
	}
	return nil
}

// ExecsForCoverage returns the total executions required to reach the
// coverage fraction target in [0, 1).
func (c Config) ExecsForCoverage(target float64) (float64, error) {
	if target < 0 || target >= 1 {
		return 0, fmt.Errorf("cluster: coverage target %v outside [0,1)", target)
	}
	return -math.Log(1-target) * c.CoverageScale, nil
}

// Coverage returns the coverage fraction after the given executions.
func (c Config) Coverage(execs float64) float64 {
	if execs <= 0 {
		return 0
	}
	return 1 - math.Exp(-execs/c.CoverageScale)
}

// fleetRate returns the effective aggregate execution rate of n machines
// whose individual rates are given (sync overhead applied).
func (c Config) fleetRate(individual []float64) float64 {
	n := len(individual)
	penalty := 1 + c.SyncCost*float64(n-1)
	total := 0.0
	for _, r := range individual {
		total += r
	}
	return total / penalty
}

// CampaignResult reports one campaign (simulated or predicted).
type CampaignResult struct {
	Machines int
	Target   float64
	Execs    float64
	Duration float64 // seconds
	Energy   energy.Joules
}

// Deploy is the ground truth: it "provisions" n machines (hidden per-unit
// deviations drawn from seed), runs the campaign to the coverage target,
// and returns what actually happened. This is the expensive step the
// paper's engineer repeats in the trial-and-error loop.
func Deploy(cfg Config, n int, target float64, seed int64) (CampaignResult, error) {
	if err := cfg.Validate(); err != nil {
		return CampaignResult{}, err
	}
	if n < 1 {
		return CampaignResult{}, fmt.Errorf("cluster: fleet size %d < 1", n)
	}
	execs, err := cfg.ExecsForCoverage(target)
	if err != nil {
		return CampaignResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	rates := make([]float64, n)
	var fleetPower energy.Watts
	for i := range rates {
		d := func() float64 { return (2*rng.Float64() - 1) * cfg.Machine.Deviation }
		rates[i] = cfg.Machine.ExecPerSec * (1 + d())
		fleetPower += cfg.Machine.ActiveW * energy.Watts(1+d())
	}
	rate := cfg.fleetRate(rates)
	duration := execs / rate
	total := (fleetPower + cfg.InfraPower).OverSeconds(duration)
	return CampaignResult{
		Machines: n, Target: target, Execs: execs,
		Duration: duration, Energy: total,
	}, nil
}

// Interface builds the campaign's energy interface from the IaC
// configuration and the machine datasheet — no deployment involved.
// Methods:
//
//	campaign(n, target)        — energy to reach `target` coverage with n machines
//	duration(n, target)        — campaign wall-clock seconds
//	marginal(n, from, to)      — extra energy to raise coverage from→to at fixed n
//
// The interface is exact over the datasheet model; it misses only the
// hidden per-machine deviations (a ~Deviation-sized error), which is the
// point: answers come "directly from the IaC files" (§1) at interface
// accuracy, for zero deployment energy.
func Interface(cfg Config) (*core.Interface, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	iface := core.New("clusterfuzz_campaign")
	iface.SetDoc("energy interface of a fuzzing campaign, derived from IaC config")

	fleetArgs := func(c *core.Call) (n int, target float64) {
		nf := c.Num(0)
		if nf < 1 || nf != math.Trunc(nf) {
			core.Fail(fmt.Errorf("cluster: fleet size must be a positive integer"))
		}
		target = c.Num(1)
		if target < 0 || target >= 1 {
			core.Fail(fmt.Errorf("cluster: coverage target %v outside [0,1)", target))
		}
		return int(nf), target
	}
	predict := func(n int, target float64) (durSec float64, e energy.Joules) {
		execs := -math.Log(1-target) * cfg.CoverageScale
		rate := float64(n) * cfg.Machine.ExecPerSec / (1 + cfg.SyncCost*float64(n-1))
		durSec = execs / rate
		power := energy.Watts(float64(n))*cfg.Machine.ActiveW + cfg.InfraPower
		return durSec, power.OverSeconds(durSec)
	}

	iface.MustMethod(core.Method{
		Name: "campaign", Params: []string{"n", "target"},
		Doc: "energy to reach `target` coverage with n machines",
		Body: func(c *core.Call) energy.Joules {
			n, target := fleetArgs(c)
			_, e := predict(n, target)
			return e
		},
	})
	iface.MustMethod(core.Method{
		Name: "duration", Params: []string{"n", "target"},
		Doc: "campaign wall-clock seconds (returned in the J channel as abstract units)",
		Body: func(c *core.Call) energy.Joules {
			n, target := fleetArgs(c)
			d, _ := predict(n, target)
			return energy.Joules(d)
		},
	})
	iface.MustMethod(core.Method{
		Name: "marginal", Params: []string{"n", "from", "to"},
		Doc: "extra energy to raise coverage from→to at fixed fleet size",
		Body: func(c *core.Call) energy.Joules {
			n := int(c.Num(0))
			from, to := c.Num(1), c.Num(2)
			if n < 1 || from < 0 || to < from || to >= 1 {
				core.Fail(fmt.Errorf("cluster: bad marginal arguments"))
			}
			_, eTo := predict(n, to)
			_, eFrom := predict(n, from)
			return eTo - eFrom
		},
	})
	return iface, nil
}

// OptimalFleet evaluates the interface across fleet sizes [1, maxN] and
// returns the energy-minimizing size and its predicted energy. This is the
// paper's "get the answer directly from the IaC files" path.
func OptimalFleet(iface *core.Interface, maxN int, target float64) (int, energy.Joules, error) {
	if maxN < 1 {
		return 0, 0, fmt.Errorf("cluster: maxN < 1")
	}
	bestN := 0
	var bestE energy.Joules
	for n := 1; n <= maxN; n++ {
		e, err := iface.ExpectedJoules("campaign", core.Num(float64(n)), core.Num(target))
		if err != nil {
			return 0, 0, err
		}
		if bestN == 0 || e < bestE {
			bestN, bestE = n, e
		}
	}
	return bestN, bestE, nil
}

// TrialAndError is the status-quo answer: deploy every candidate fleet
// size, measure, pick the best. It returns the optimum it found and the
// total energy burned finding it — the energy the interface path saves.
func TrialAndError(cfg Config, maxN int, target float64, seed int64) (bestN int, bestE, spent energy.Joules, err error) {
	if maxN < 1 {
		return 0, 0, 0, fmt.Errorf("cluster: maxN < 1")
	}
	for n := 1; n <= maxN; n++ {
		res, derr := Deploy(cfg, n, target, seed+int64(n))
		if derr != nil {
			return 0, 0, 0, derr
		}
		spent += res.Energy
		if bestN == 0 || res.Energy < bestE {
			bestN, bestE = n, res.Energy
		}
	}
	return bestN, bestE, spent, nil
}
