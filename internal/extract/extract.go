package extract

import (
	"fmt"
	"sort"

	"energyclarity/internal/eil"
)

// Extract derives the module's energy interface as EIL source (§4.2). The
// analysis is structural and per-path: every resource call becomes a call
// into the bound interface, input branches stay input branches, bounded
// loops stay loops, and branches on hidden state become ECVs with the
// probabilities recorded in the IR. usesTargets maps each binding's local
// name to the interface name to import (as registered when compiling).
//
// The emitted interface is *accurate*, not worst-case: for every input and
// every hidden-state assignment it computes exactly the energy Run would
// consume (verified property in tests and in the E5 experiment).
func Extract(m *Module, usesTargets map[string]string) (string, error) {
	if m == nil || m.Name == "" {
		return "", fmt.Errorf("extract: nil or unnamed module")
	}
	st := &extractor{
		usesTargets: usesTargets,
		ecvs:        map[string]*eil.ECVDecl{},
		bindings:    map[string]bool{},
		known:       map[string]bool{},
		tainted:     map[string]bool{},
	}
	body, err := st.block(m.Body)
	if err != nil {
		return "", fmt.Errorf("extract: %s: %w", m.Name, err)
	}

	// Accumulator pattern: let _e = 0; ...; return _e.
	stmts := []eil.Stmt{&eil.LetStmt{Name: "_e", Init: &eil.NumLit{Val: 0}}}
	stmts = append(stmts, body...)
	stmts = append(stmts, &eil.ReturnStmt{Expr: &eil.Ident{Name: "_e"}})

	decl := &eil.InterfaceDecl{
		Name: m.Name,
		Doc:  "extracted from implementation",
		Funcs: []*eil.FuncDecl{{
			Name:   "run",
			Params: append([]string(nil), m.Params...),
			Body:   &eil.Block{Stmts: stmts},
		}},
	}
	// Deterministic declaration order.
	var ecvNames []string
	for name := range st.ecvs {
		ecvNames = append(ecvNames, name)
	}
	sort.Strings(ecvNames)
	for _, name := range ecvNames {
		decl.ECVs = append(decl.ECVs, st.ecvs[name])
	}
	var bindNames []string
	for name := range st.bindings {
		bindNames = append(bindNames, name)
	}
	sort.Strings(bindNames)
	for _, name := range bindNames {
		target, ok := usesTargets[name]
		if !ok {
			return "", fmt.Errorf("extract: %s: no uses target for binding %q", m.Name, name)
		}
		decl.Uses = append(decl.Uses, &eil.UsesDecl{Local: name, Iface: target})
	}
	return eil.PrintInterface(decl), nil
}

type extractor struct {
	usesTargets map[string]string
	ecvs        map[string]*eil.ECVDecl
	bindings    map[string]bool
	// Within-call state tracking: known holds states written
	// unconditionally earlier in the call (their reads resolve statically);
	// tainted holds states written on some-but-not-all paths (later reads
	// would need path-sensitive analysis and are rejected).
	known   map[string]bool
	tainted map[string]bool
}

// block translates IR instructions into statements that accumulate into _e.
// conditional marks whether this block executes on only some paths.
func (st *extractor) block(body []Instr) ([]eil.Stmt, error) {
	return st.blockCond(body, false)
}

func (st *extractor) blockCond(body []Instr, conditional bool) ([]eil.Stmt, error) {
	var out []eil.Stmt
	for _, in := range body {
		switch i := in.(type) {
		case SetState:
			// A state write consumes no energy itself; it changes which
			// branch later reads take. Unconditional writes are tracked
			// exactly; conditional ones taint the state.
			if conditional {
				st.tainted[i.State] = true
				delete(st.known, i.State)
			} else {
				st.known[i.State] = i.Value
				delete(st.tainted, i.State)
			}
			continue
		}
		stmt, err := st.instr(in, conditional)
		if err != nil {
			return nil, err
		}
		out = append(out, stmt...)
	}
	return out, nil
}

func (st *extractor) instr(in Instr, conditional bool) ([]eil.Stmt, error) {
	var out []eil.Stmt
	{
		switch i := in.(type) {
		case Charge:
			st.bindings[i.Binding] = true
			args := make([]eil.Expr, len(i.Args))
			for k, a := range i.Args {
				e, err := exprToEIL(a)
				if err != nil {
					return nil, err
				}
				args[k] = e
			}
			out = append(out, accumulate(&eil.CallExpr{
				Target: i.Binding, Name: i.Method, Args: args,
			}))
		case Let:
			v, err := exprToEIL(i.Val)
			if err != nil {
				return nil, err
			}
			out = append(out, &eil.LetStmt{Name: i.Name, Init: v})
		case If:
			cond, err := condToEIL(i.Cond)
			if err != nil {
				return nil, err
			}
			thenB, err := st.blockCond(i.Then, true)
			if err != nil {
				return nil, err
			}
			elseB, err := st.blockCond(i.Else, true)
			if err != nil {
				return nil, err
			}
			stmt := &eil.IfStmt{Cond: cond, Then: &eil.Block{Stmts: thenB}}
			if len(elseB) > 0 {
				stmt.Else = &eil.Block{Stmts: elseB}
			}
			out = append(out, stmt)
		case Loop:
			from, err := exprToEIL(i.From)
			if err != nil {
				return nil, err
			}
			to, err := exprToEIL(i.To)
			if err != nil {
				return nil, err
			}
			bodyB, err := st.blockCond(i.Body, true)
			if err != nil {
				return nil, err
			}
			out = append(out, &eil.ForStmt{
				Var: i.Var, From: from, To: to, Body: &eil.Block{Stmts: bodyB},
			})
		case StateIf:
			if i.PTrue < 0 || i.PTrue > 1 {
				return nil, fmt.Errorf("state %q probability %v out of [0,1]", i.State, i.PTrue)
			}
			if st.tainted[i.State] {
				return nil, fmt.Errorf("state %q is written conditionally before this read; "+
					"path-sensitive analysis required", i.State)
			}
			if v, fixed := st.known[i.State]; fixed {
				// The state was set unconditionally earlier in this call:
				// the branch is statically resolved — no ECV needed.
				branch := i.Else
				if v {
					branch = i.Then
				}
				resolved, err := st.blockCond(branch, conditional)
				if err != nil {
					return nil, err
				}
				out = append(out, resolved...)
				break
			}
			if prev, dup := st.ecvs[i.State]; dup {
				// Same state may gate several branches; probabilities must
				// agree or the module is inconsistent.
				if prevP := prev.Dist.Args[0].(*eil.NumLit).Val; prevP != i.PTrue {
					return nil, fmt.Errorf("state %q declared with conflicting probabilities", i.State)
				}
			} else {
				st.ecvs[i.State] = &eil.ECVDecl{
					Name: i.State,
					Doc:  i.Doc,
					Dist: &eil.DistExpr{
						Kind: eil.DistBernoulli,
						Args: []eil.Expr{&eil.NumLit{Val: i.PTrue}},
					},
				}
			}
			thenB, err := st.blockCond(i.Then, true)
			if err != nil {
				return nil, err
			}
			elseB, err := st.blockCond(i.Else, true)
			if err != nil {
				return nil, err
			}
			stmt := &eil.IfStmt{
				Cond: &eil.Ident{Name: i.State},
				Then: &eil.Block{Stmts: thenB},
			}
			if len(elseB) > 0 {
				stmt.Else = &eil.Block{Stmts: elseB}
			}
			out = append(out, stmt)
		default:
			return nil, fmt.Errorf("unknown instruction %T", in)
		}
	}
	return out, nil
}

// accumulate produces `_e = _e + <expr>`.
func accumulate(e eil.Expr) eil.Stmt {
	return &eil.AssignStmt{
		Name: "_e",
		Expr: &eil.BinaryExpr{Op: eil.TokPlus, X: &eil.Ident{Name: "_e"}, Y: e},
	}
}

func exprToEIL(e *Expr) (eil.Expr, error) {
	if e == nil {
		return nil, fmt.Errorf("nil expression")
	}
	switch e.kind {
	case eNum:
		return &eil.NumLit{Val: e.num}, nil
	case eArg:
		return &eil.Ident{Name: e.name}, nil
	case eField:
		base, err := exprToEIL(e.a)
		if err != nil {
			return nil, err
		}
		return &eil.FieldExpr{X: base, Name: e.name}, nil
	case eBin:
		a, err := exprToEIL(e.a)
		if err != nil {
			return nil, err
		}
		b, err := exprToEIL(e.b)
		if err != nil {
			return nil, err
		}
		var op eil.TokKind
		switch e.binop {
		case '+':
			op = eil.TokPlus
		case '-':
			op = eil.TokMinus
		case '*':
			op = eil.TokStar
		case '/':
			op = eil.TokSlash
		default:
			return nil, fmt.Errorf("bad operator %q", string(e.binop))
		}
		return &eil.BinaryExpr{Op: op, X: a, Y: b}, nil
	}
	return nil, fmt.Errorf("bad expression kind")
}

func condToEIL(c Cond) (eil.Expr, error) {
	a, err := exprToEIL(c.A)
	if err != nil {
		return nil, err
	}
	b, err := exprToEIL(c.B)
	if err != nil {
		return nil, err
	}
	var op eil.TokKind
	switch c.Op {
	case "<":
		op = eil.TokLt
	case "<=":
		op = eil.TokLe
	case ">":
		op = eil.TokGt
	case ">=":
		op = eil.TokGe
	case "==":
		op = eil.TokEq
	case "!=":
		op = eil.TokNeq
	default:
		return nil, fmt.Errorf("bad comparison %q", c.Op)
	}
	return &eil.BinaryExpr{Op: op, X: a, Y: b}, nil
}
