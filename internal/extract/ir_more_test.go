package extract

import (
	"math"
	"strings"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
)

func TestExprConstructorsEvaluate(t *testing.T) {
	b := map[string]*core.Interface{"hw": hwIface()}
	// op(((n+2)*3-4)/2) with n=10 → op(16) → 32.
	m := &Module{
		Name:   "arith",
		Params: []string{"n"},
		Body: []Instr{
			Charge{Binding: "hw", Method: "op", Args: []*Expr{
				Div(Sub(Mul(Add(Arg("n"), Num(2)), Num(3)), Num(4)), Num(2)),
			}},
		},
	}
	got, err := Run(m, b, []core.Value{core.Num(10)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-32) > 1e-12 {
		t.Fatalf("arith run = %v, want 32", got)
	}
	// Extraction preserves the same arithmetic.
	src, err := Extract(m, map[string]string{"hw": "hw"})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := eil.Compile(src, b)
	if err != nil {
		t.Fatal(err)
	}
	j, err := compiled["arith"].ExpectedJoules("run", core.Num(10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(j)-32) > 1e-12 {
		t.Fatalf("extracted arith = %v, want 32", j)
	}
}

func TestAllComparisonOps(t *testing.T) {
	b := map[string]*core.Interface{"hw": hwIface()}
	for _, op := range []string{"<", "<=", ">", ">=", "==", "!="} {
		m := &Module{
			Name:   "cmp",
			Params: []string{"n"},
			Body: []Instr{
				If{Cond: Cond{Op: op, A: Arg("n"), B: Num(5)},
					Then: []Instr{Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1)}}},
					Else: []Instr{Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(10)}}},
				},
			},
		}
		for _, n := range []float64{4, 5, 6} {
			truth, err := Run(m, b, []core.Value{core.Num(n)}, nil)
			if err != nil {
				t.Fatalf("%s(%v): %v", op, n, err)
			}
			src, err := Extract(m, map[string]string{"hw": "hw"})
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := eil.Compile(src, b)
			if err != nil {
				t.Fatalf("%s: %v\n%s", op, err, src)
			}
			j, err := compiled["cmp"].ExpectedJoules("run", core.Num(n))
			if err != nil {
				t.Fatal(err)
			}
			if float64(j) != truth {
				t.Fatalf("%s(%v): extracted %v != run %v", op, n, j, truth)
			}
		}
	}
	// Unknown comparison op.
	bad := &Module{Name: "x", Params: []string{"n"}, Body: []Instr{
		If{Cond: Cond{Op: "~", A: Arg("n"), B: Num(1)}},
	}}
	if _, err := Run(bad, b, []core.Value{core.Num(1)}, nil); err == nil {
		t.Fatal("bad comparison op accepted by Run")
	}
	if _, err := Extract(bad, nil); err == nil {
		t.Fatal("bad comparison op accepted by Extract")
	}
}

func TestCondOnNonNumFails(t *testing.T) {
	b := map[string]*core.Interface{"hw": hwIface()}
	m := &Module{Name: "x", Params: []string{"n"}, Body: []Instr{
		If{Cond: Cond{Op: "<", A: Arg("n"), B: Num(1)}},
	}}
	if _, err := Run(m, b, []core.Value{core.Bool(true)}, nil); err == nil {
		t.Fatal("bool in comparison accepted")
	}
}

func TestNilExprRejected(t *testing.T) {
	m := &Module{Name: "x", Body: []Instr{
		Charge{Binding: "hw", Method: "op", Args: []*Expr{nil}},
	}}
	if _, err := Extract(m, map[string]string{"hw": "hw"}); err == nil {
		t.Fatal("nil expression accepted by Extract")
	}
}

func TestCollectEffectsNilModule(t *testing.T) {
	if _, _, err := collectEffects(nil); err == nil {
		t.Fatal("nil module accepted")
	}
	if _, err := Analyze(nil, nil); err == nil {
		t.Fatal("Analyze(nil) accepted")
	}
}

func TestEffectStringForms(t *testing.T) {
	e := Effect{State: "s", Value: true}
	if e.String() != "sets s=true" {
		t.Fatalf("Effect string %q", e.String())
	}
	e.Conditional = true
	if !strings.Contains(e.String(), "conditionally") {
		t.Fatalf("conditional marker missing: %q", e.String())
	}
}

func TestLoopVariableScoping(t *testing.T) {
	// The loop variable must not leak past the loop in the executor.
	b := map[string]*core.Interface{"hw": hwIface()}
	m := &Module{Name: "scope", Body: []Instr{
		Loop{Var: "i", From: Num(0), To: Num(3), Body: []Instr{
			Charge{Binding: "hw", Method: "op", Args: []*Expr{Arg("i")}},
		}},
		Charge{Binding: "hw", Method: "op", Args: []*Expr{Arg("i")}},
	}}
	if _, err := Run(m, b, nil, nil); err == nil {
		t.Fatal("loop variable leaked out of scope")
	}
}

func TestStateFlipBothWaysIsConditional(t *testing.T) {
	m := &Module{Name: "flip", Body: []Instr{
		SetState{State: "s", Value: true},
		SetState{State: "s", Value: false},
	}}
	effects, _, err := collectEffects(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 1 || !effects[0].Conditional {
		t.Fatalf("flip-flop should report a conditional net effect: %+v", effects)
	}
}

func TestFractionalLoopBoundsMatchEIL(t *testing.T) {
	// Loops with fractional bounds must execute identically in the IR
	// executor and in the extracted EIL (integer steps from ceil(from)).
	b := map[string]*core.Interface{"hw": hwIface()}
	m := &Module{
		Name:   "frac",
		Params: []string{"a", "b"},
		Body: []Instr{
			Loop{Var: "i", From: Div(Arg("a"), Num(4)), To: Div(Arg("b"), Num(4)),
				Body: []Instr{
					Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1)}},
				}},
		},
	}
	src, err := Extract(m, map[string]string{"hw": "hw"})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := eil.Compile(src, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, bounds := range [][2]float64{{2, 14}, {3, 15}, {0, 1}, {5, 5}, {7, 3}} {
		args := []core.Value{core.Num(bounds[0]), core.Num(bounds[1])}
		truth, err := Run(m, b, args, nil)
		if err != nil {
			t.Fatal(err)
		}
		j, err := compiled["frac"].ExpectedJoules("run", args...)
		if err != nil {
			t.Fatal(err)
		}
		if float64(j) != truth {
			t.Fatalf("bounds %v: extracted %v != run %v", bounds, j, truth)
		}
	}
}
