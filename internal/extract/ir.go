// Package extract implements the paper's §4.2 workflow: deriving a
// module's energy interface from its implementation. Implementations are
// expressed in a small instruction IR — "a combination of calls to lower-
// level resources and the actual instructions that the module executes" —
// over which the extractor performs a per-path structural analysis and
// emits an EIL interface, introducing ECVs for branches on hidden state.
//
// The package has two independent halves, which is what makes extraction
// testable: Run executes an IR module directly against bound interfaces
// (the "implementation"), and Extract emits EIL whose compiled evaluation
// must agree with Run on every input and state assignment.
package extract

import (
	"fmt"
	"math"

	"energyclarity/internal/core"
)

// Expr is an arithmetic expression over module parameters.
type Expr struct {
	kind  exprKind
	num   float64
	name  string // Arg: parameter; Fieldv: field name
	binop byte   // '+', '-', '*', '/'
	a, b  *Expr
}

type exprKind int

const (
	eNum exprKind = iota
	eArg
	eField
	eBin
)

// Num returns a numeric literal.
func Num(v float64) *Expr { return &Expr{kind: eNum, num: v} }

// Arg references a module parameter or loop/let variable.
func Arg(name string) *Expr { return &Expr{kind: eArg, name: name} }

// Field accesses a record field of an expression.
func Field(x *Expr, name string) *Expr { return &Expr{kind: eField, a: x, name: name} }

// Add returns a+b.
func Add(a, b *Expr) *Expr { return &Expr{kind: eBin, binop: '+', a: a, b: b} }

// Sub returns a-b.
func Sub(a, b *Expr) *Expr { return &Expr{kind: eBin, binop: '-', a: a, b: b} }

// Mul returns a*b.
func Mul(a, b *Expr) *Expr { return &Expr{kind: eBin, binop: '*', a: a, b: b} }

// Div returns a/b.
func Div(a, b *Expr) *Expr { return &Expr{kind: eBin, binop: '/', a: a, b: b} }

// Cond is a comparison between two expressions.
type Cond struct {
	Op   string // "<", "<=", ">", ">=", "==", "!="
	A, B *Expr
}

// Instr is one IR instruction.
type Instr interface{ isInstr() }

// Charge consumes energy from a bound resource: binding.method(args).
type Charge struct {
	Binding string
	Method  string
	Args    []*Expr
}

// Let introduces a local variable.
type Let struct {
	Name string
	Val  *Expr
}

// If branches on a predicate over the input.
type If struct {
	Cond Cond
	Then []Instr
	Else []Instr
}

// Loop runs Body for Var in [From, To).
type Loop struct {
	Var  string
	From *Expr
	To   *Expr
	Body []Instr
}

// StateIf branches on hidden module state — the construct that becomes an
// ECV in the extracted interface (§3: state "not directly related to the
// input of the interface").
type StateIf struct {
	State string  // state variable name (becomes the ECV name)
	PTrue float64 // probability the state is true (from profiling/config)
	Doc   string
	Then  []Instr
	Else  []Instr
}

func (Charge) isInstr()  {}
func (Let) isInstr()     {}
func (If) isInstr()      {}
func (Loop) isInstr()    {}
func (StateIf) isInstr() {}

// Module is an implementation in the IR.
type Module struct {
	Name   string
	Params []string
	Body   []Instr
}

// maxLoopIterations bounds IR execution, mirroring EIL's fuel.
const maxLoopIterations = 1_000_000

// Run executes the module against concrete bindings, arguments, and a
// hidden-state assignment, returning the true energy consumed. It is the
// reference semantics extraction is tested against. The caller's state map
// is not mutated (SetState effects are applied to a copy); use RunSequence
// to thread state across calls.
func Run(m *Module, bindings map[string]*core.Interface, args []core.Value,
	state map[string]bool) (float64, error) {

	local := map[string]bool{}
	for k, v := range state {
		local[k] = v
	}
	return runWithState(m, bindings, args, local)
}

// runWithState executes the module, mutating state in place on SetState.
func runWithState(m *Module, bindings map[string]*core.Interface, args []core.Value,
	state map[string]bool) (float64, error) {

	if len(args) != len(m.Params) {
		return 0, fmt.Errorf("extract: %s: %d args, want %d", m.Name, len(args), len(m.Params))
	}
	env := map[string]core.Value{}
	for i, p := range m.Params {
		env[p] = args[i]
	}
	ex := &executor{bindings: bindings, state: state, budget: maxLoopIterations}
	total, err := ex.run(m.Body, env)
	if err != nil {
		return 0, fmt.Errorf("extract: %s: %w", m.Name, err)
	}
	return total, nil
}

type executor struct {
	bindings map[string]*core.Interface
	state    map[string]bool
	budget   int
}

func (ex *executor) run(body []Instr, env map[string]core.Value) (float64, error) {
	total := 0.0
	for _, in := range body {
		ex.budget--
		if ex.budget <= 0 {
			return 0, fmt.Errorf("instruction budget exhausted")
		}
		switch i := in.(type) {
		case Charge:
			iface, ok := ex.bindings[i.Binding]
			if !ok {
				return 0, fmt.Errorf("unknown binding %q", i.Binding)
			}
			vals := make([]core.Value, len(i.Args))
			for k, a := range i.Args {
				v, err := evalExpr(a, env)
				if err != nil {
					return 0, err
				}
				vals[k] = v
			}
			j, err := iface.ExpectedJoules(i.Method, vals...)
			if err != nil {
				return 0, err
			}
			total += float64(j)
		case Let:
			v, err := evalExpr(i.Val, env)
			if err != nil {
				return 0, err
			}
			env[i.Name] = v
		case If:
			take, err := evalCond(i.Cond, env)
			if err != nil {
				return 0, err
			}
			branch := i.Else
			if take {
				branch = i.Then
			}
			e, err := ex.run(branch, env)
			if err != nil {
				return 0, err
			}
			total += e
		case Loop:
			fromV, err := evalNum(i.From, env)
			if err != nil {
				return 0, err
			}
			toV, err := evalNum(i.To, env)
			if err != nil {
				return 0, err
			}
			// Integer steps from ceil(from), matching EIL's for-loop
			// semantics exactly (extraction equivalence depends on it).
			for v := math.Ceil(fromV); v < toV; v++ {
				ex.budget--
				if ex.budget <= 0 {
					return 0, fmt.Errorf("instruction budget exhausted in loop")
				}
				env[i.Var] = core.Num(v)
				e, err := ex.run(i.Body, env)
				if err != nil {
					return 0, err
				}
				total += e
			}
			delete(env, i.Var)
		case SetState:
			ex.state[i.State] = i.Value
		case StateIf:
			on, ok := ex.state[i.State]
			if !ok {
				return 0, fmt.Errorf("hidden state %q not assigned", i.State)
			}
			branch := i.Else
			if on {
				branch = i.Then
			}
			e, err := ex.run(branch, env)
			if err != nil {
				return 0, err
			}
			total += e
		default:
			return 0, fmt.Errorf("unknown instruction %T", in)
		}
	}
	return total, nil
}

func evalExpr(e *Expr, env map[string]core.Value) (core.Value, error) {
	switch e.kind {
	case eNum:
		return core.Num(e.num), nil
	case eArg:
		v, ok := env[e.name]
		if !ok {
			return core.Value{}, fmt.Errorf("undefined %q", e.name)
		}
		return v, nil
	case eField:
		base, err := evalExpr(e.a, env)
		if err != nil {
			return core.Value{}, err
		}
		f, ok := base.Field(e.name)
		if !ok {
			return core.Value{}, fmt.Errorf("no field %q", e.name)
		}
		return f, nil
	case eBin:
		a, err := evalNumV(e.a, env)
		if err != nil {
			return core.Value{}, err
		}
		b, err := evalNumV(e.b, env)
		if err != nil {
			return core.Value{}, err
		}
		switch e.binop {
		case '+':
			return core.Num(a + b), nil
		case '-':
			return core.Num(a - b), nil
		case '*':
			return core.Num(a * b), nil
		case '/':
			if b == 0 {
				return core.Value{}, fmt.Errorf("division by zero")
			}
			return core.Num(a / b), nil
		}
	}
	return core.Value{}, fmt.Errorf("bad expression")
}

func evalNumV(e *Expr, env map[string]core.Value) (float64, error) {
	v, err := evalExpr(e, env)
	if err != nil {
		return 0, err
	}
	n, ok := v.AsNum()
	if !ok {
		return 0, fmt.Errorf("expected num, got %s", v.Kind())
	}
	return n, nil
}

func evalNum(e *Expr, env map[string]core.Value) (float64, error) {
	return evalNumV(e, env)
}

func evalCond(c Cond, env map[string]core.Value) (bool, error) {
	a, err := evalNumV(c.A, env)
	if err != nil {
		return false, err
	}
	b, err := evalNumV(c.B, env)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case "<":
		return a < b, nil
	case "<=":
		return a <= b, nil
	case ">":
		return a > b, nil
	case ">=":
		return a >= b, nil
	case "==":
		return a == b, nil
	case "!=":
		return a != b, nil
	default:
		return false, fmt.Errorf("bad comparison %q", c.Op)
	}
}
