package extract

import (
	"math"
	"strings"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
	"energyclarity/internal/energy"
)

// hwIface is a leaf interface with simple linear costs, used as the bound
// resource in extraction tests.
func hwIface() *core.Interface {
	return core.New("hw").
		MustMethod(core.Method{Name: "op", Params: []string{"n"},
			Body: func(c *core.Call) energy.Joules { return energy.Joules(2 * c.Num(0)) }}).
		MustMethod(core.Method{Name: "io", Params: []string{"bytes"},
			Body: func(c *core.Call) energy.Joules { return energy.Joules(0.5 * c.Num(0)) }})
}

// serviceModule is a representative IR module with all constructs: lets,
// input branches, a bounded loop, a hidden-state branch, and field access.
func serviceModule() *Module {
	return &Module{
		Name:   "svc",
		Params: []string{"req"},
		Body: []Instr{
			Let{Name: "n", Val: Field(Arg("req"), "size")},
			StateIf{
				State: "warm_cache", PTrue: 0.25, Doc: "connection pool warm",
				Then: []Instr{
					Charge{Binding: "hw", Method: "io", Args: []*Expr{Num(64)}},
				},
				Else: []Instr{
					Charge{Binding: "hw", Method: "io", Args: []*Expr{Num(4096)}},
				},
			},
			If{
				Cond: Cond{Op: ">", A: Arg("n"), B: Num(1000)},
				Then: []Instr{
					Loop{Var: "i", From: Num(0), To: Div(Arg("n"), Num(1000)), Body: []Instr{
						Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1000)}},
					}},
				},
				Else: []Instr{
					Charge{Binding: "hw", Method: "op", Args: []*Expr{Arg("n")}},
				},
			},
		},
	}
}

func reqVal(size float64) core.Value {
	return core.Record(map[string]core.Value{"size": core.Num(size)})
}

func TestRunExecutesModule(t *testing.T) {
	m := serviceModule()
	b := map[string]*core.Interface{"hw": hwIface()}
	got, err := Run(m, b, []core.Value{reqVal(500)}, map[string]bool{"warm_cache": true})
	if err != nil {
		t.Fatal(err)
	}
	// warm: io(64)=32; n=500 <= 1000: op(500)=1000.
	if want := 32 + 1000.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Run = %v, want %v", got, want)
	}
	got, err = Run(m, b, []core.Value{reqVal(3500)}, map[string]bool{"warm_cache": false})
	if err != nil {
		t.Fatal(err)
	}
	// cold: io(4096)=2048; loop 3 iterations (3500/1000=3.5 → i=0,1,2? ceil(from)=0; i<3.5 → 0,1,2,3: 4 iterations) op(1000)=2000 each.
	if want := 2048 + 4*2000.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Run = %v, want %v", got, want)
	}
}

func TestRunErrors(t *testing.T) {
	m := serviceModule()
	b := map[string]*core.Interface{"hw": hwIface()}
	if _, err := Run(m, b, nil, nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := Run(m, map[string]*core.Interface{}, []core.Value{reqVal(1)},
		map[string]bool{"warm_cache": true}); err == nil {
		t.Fatal("missing binding accepted")
	}
	if _, err := Run(m, b, []core.Value{reqVal(1)}, map[string]bool{}); err == nil {
		t.Fatal("unassigned state accepted")
	}
	// Unbounded loop hits the budget.
	runaway := &Module{Name: "r", Params: nil, Body: []Instr{
		Loop{Var: "i", From: Num(0), To: Num(1e12), Body: []Instr{
			Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1)}},
		}},
	}}
	if _, err := Run(runaway, b, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "budget") {
		t.Fatalf("runaway loop not stopped: %v", err)
	}
}

func TestExtractEmitsValidEIL(t *testing.T) {
	src, err := Extract(serviceModule(), map[string]string{"hw": "hw"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"interface svc", "ecv warm_cache: bernoulli(0.25)",
		"uses hw: hw", "func run(req)", "let _e = 0", "return _e"} {
		if !strings.Contains(src, want) {
			t.Fatalf("extracted source missing %q:\n%s", want, src)
		}
	}
	if _, err := eil.Compile(src, map[string]*core.Interface{"hw": hwIface()}); err != nil {
		t.Fatalf("extracted source does not compile: %v\n%s", err, src)
	}
}

// TestExtractedMatchesImplementationEverywhere is the E5 property: for
// every input and every hidden-state assignment, the compiled extracted
// interface computes exactly what the implementation consumes.
func TestExtractedMatchesImplementationEverywhere(t *testing.T) {
	m := serviceModule()
	bindings := map[string]*core.Interface{"hw": hwIface()}
	src, err := Extract(m, map[string]string{"hw": "hw"})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := eil.Compile(src, bindings)
	if err != nil {
		t.Fatal(err)
	}
	iface := compiled["svc"]
	for _, size := range []float64{0, 1, 999, 1000, 1001, 2500, 10000, 123456} {
		for _, warm := range []bool{true, false} {
			truth, err := Run(m, bindings, []core.Value{reqVal(size)},
				map[string]bool{"warm_cache": warm})
			if err != nil {
				t.Fatal(err)
			}
			d, err := iface.Eval("run", []core.Value{reqVal(size)},
				core.FixedAssignment(map[string]core.Value{"warm_cache": core.Bool(warm)}))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(d.Mean()-truth) > 1e-9*(1+truth) {
				t.Fatalf("size=%v warm=%v: interface %v != implementation %v",
					size, warm, d.Mean(), truth)
			}
		}
	}
}

func TestExtractedExpectationWeighsECVs(t *testing.T) {
	m := serviceModule()
	bindings := map[string]*core.Interface{"hw": hwIface()}
	src, err := Extract(m, map[string]string{"hw": "hw"})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := eil.Compile(src, bindings)
	if err != nil {
		t.Fatal(err)
	}
	d, err := compiled["svc"].Eval("run", []core.Value{reqVal(500)}, core.Expected())
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := Run(m, bindings, []core.Value{reqVal(500)}, map[string]bool{"warm_cache": true})
	cold, _ := Run(m, bindings, []core.Value{reqVal(500)}, map[string]bool{"warm_cache": false})
	want := 0.25*warm + 0.75*cold
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("expectation %v, want %v", d.Mean(), want)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(nil, nil); err == nil {
		t.Fatal("nil module accepted")
	}
	if _, err := Extract(&Module{}, nil); err == nil {
		t.Fatal("unnamed module accepted")
	}
	// Missing uses target.
	m := &Module{Name: "x", Body: []Instr{
		Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1)}},
	}}
	if _, err := Extract(m, map[string]string{}); err == nil {
		t.Fatal("missing uses target accepted")
	}
	// Bad state probability.
	m2 := &Module{Name: "x", Body: []Instr{
		StateIf{State: "s", PTrue: 1.5},
	}}
	if _, err := Extract(m2, nil); err == nil {
		t.Fatal("bad probability accepted")
	}
	// Conflicting probabilities for the same state.
	m3 := &Module{Name: "x", Body: []Instr{
		StateIf{State: "s", PTrue: 0.5},
		StateIf{State: "s", PTrue: 0.6},
	}}
	if _, err := Extract(m3, nil); err == nil {
		t.Fatal("conflicting state probabilities accepted")
	}
}

func TestExtractSharedStateECVOnce(t *testing.T) {
	m := &Module{Name: "x", Body: []Instr{
		StateIf{State: "s", PTrue: 0.5, Then: []Instr{
			Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1)}},
		}},
		StateIf{State: "s", PTrue: 0.5, Then: []Instr{
			Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(2)}},
		}},
	}}
	src, err := Extract(m, map[string]string{"hw": "hw"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(src, "ecv s:") != 1 {
		t.Fatalf("state ECV not deduplicated:\n%s", src)
	}
	// Both branches must be correlated through the single ECV: expected
	// energy = 0.5*(op(1)+op(2)) = 0.5*6 = 3.
	compiled, err := eil.Compile(src, map[string]*core.Interface{"hw": hwIface()})
	if err != nil {
		t.Fatal(err)
	}
	d, err := compiled["x"].Eval("run", nil, core.Expected())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-3) > 1e-12 {
		t.Fatalf("correlated ECV expectation %v, want 3", d.Mean())
	}
}

func TestExprErrors(t *testing.T) {
	b := map[string]*core.Interface{"hw": hwIface()}
	divZero := &Module{Name: "x", Params: []string{"n"}, Body: []Instr{
		Charge{Binding: "hw", Method: "op", Args: []*Expr{Div(Num(1), Sub(Arg("n"), Arg("n")))}},
	}}
	if _, err := Run(divZero, b, []core.Value{core.Num(1)}, nil); err == nil {
		t.Fatal("division by zero accepted")
	}
	missingField := &Module{Name: "x", Params: []string{"r"}, Body: []Instr{
		Charge{Binding: "hw", Method: "op", Args: []*Expr{Field(Arg("r"), "nope")}},
	}}
	if _, err := Run(missingField, b, []core.Value{core.Record(nil)}, nil); err == nil {
		t.Fatal("missing field accepted")
	}
	undefined := &Module{Name: "x", Body: []Instr{
		Charge{Binding: "hw", Method: "op", Args: []*Expr{Arg("ghost")}},
	}}
	if _, err := Run(undefined, b, nil, nil); err == nil {
		t.Fatal("undefined variable accepted")
	}
}
