package extract

import (
	"math"
	"strings"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
	"energyclarity/internal/energy"
)

// wifiModule is the paper's §4.2 side-effect example as an IR module: an
// app that uses WiFi. If the radio is off it pays the turn-on cost and —
// the side effect — leaves the radio on for whoever sends next.
func wifiModule() *Module {
	return &Module{
		Name:   "wifi_send",
		Params: []string{"bytes"},
		Body: []Instr{
			StateIf{
				State: "radio_on", PTrue: 0.5, Doc: "WiFi radio powered",
				Then: nil, // radio already on: nothing extra
				Else: []Instr{
					Charge{Binding: "radio", Method: "power_up", Args: nil},
				},
			},
			SetState{State: "radio_on", Value: true},
			Charge{Binding: "radio", Method: "tx", Args: []*Expr{Arg("bytes")}},
		},
	}
}

func radioIface() *core.Interface {
	return core.New("wifi_radio").
		MustMethod(core.Method{Name: "power_up",
			Body: func(c *core.Call) energy.Joules { return 800 * energy.Millijoule }}).
		MustMethod(core.Method{Name: "tx", Params: []string{"bytes"},
			Body: func(c *core.Call) energy.Joules {
				return energy.Joules(c.Num(0)) * 2 * energy.Microjoule
			}})
}

func TestAnalyzeReportsEffects(t *testing.T) {
	a, err := Analyze(wifiModule(), map[string]string{"radio": "wifi_radio"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Effects) != 1 {
		t.Fatalf("effects = %+v", a.Effects)
	}
	e := a.Effects[0]
	if e.State != "radio_on" || !e.Value || e.Conditional {
		t.Fatalf("effect = %+v, want unconditional radio_on=true", e)
	}
	if len(a.Reads) != 1 || a.Reads[0] != "radio_on" {
		t.Fatalf("reads = %v", a.Reads)
	}
	// The emitted EIL carries the effect in its doc string and still
	// compiles.
	if !strings.Contains(a.EIL, "side effects: sets radio_on=true") {
		t.Fatalf("EIL missing side-effect note:\n%s", a.EIL)
	}
	if _, err := eil.Compile(a.EIL, map[string]*core.Interface{"wifi_radio": radioIface()}); err != nil {
		t.Fatalf("emitted EIL does not compile: %v\n%s", err, a.EIL)
	}
}

func TestRunSequenceThreadsState(t *testing.T) {
	bindings := map[string]*core.Interface{"radio": radioIface()}
	steps := []RunStep{
		{Module: wifiModule(), Args: []core.Value{core.Num(1000)}},
		{Module: wifiModule(), Args: []core.Value{core.Num(1000)}},
		{Module: wifiModule(), Args: []core.Value{core.Num(1000)}},
	}
	total, final, err := RunSequence(steps, bindings, map[string]bool{"radio_on": false})
	if err != nil {
		t.Fatal(err)
	}
	// One power-up (first call only) + 3 transmissions.
	want := 0.8 + 3*1000*2e-6
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("sequence energy %v, want %v", total, want)
	}
	if !final["radio_on"] {
		t.Fatal("radio not left on")
	}
}

func TestRunDoesNotMutateCallerState(t *testing.T) {
	bindings := map[string]*core.Interface{"radio": radioIface()}
	state := map[string]bool{"radio_on": false}
	if _, err := Run(wifiModule(), bindings, []core.Value{core.Num(10)}, state); err != nil {
		t.Fatal(err)
	}
	if state["radio_on"] {
		t.Fatal("Run mutated the caller's state map")
	}
}

// TestPredictSequenceMatchesImplementation is the side-effect headline: the
// resource manager predicts a call sequence from extracted interfaces +
// declared effects, and the prediction matches the implementation exactly —
// including the first-call-pays-power-up structure.
func TestPredictSequenceMatchesImplementation(t *testing.T) {
	bindings := map[string]*core.Interface{"radio": radioIface()}
	m := wifiModule()
	a, err := Analyze(m, map[string]string{"radio": "wifi_radio"})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := eil.Compile(a.EIL, map[string]*core.Interface{"wifi_radio": radioIface()})
	if err != nil {
		t.Fatal(err)
	}
	iface := compiled["wifi_send"]

	for _, initial := range []bool{false, true} {
		var predSteps []SequenceStep
		var runSteps []RunStep
		for i := 0; i < 4; i++ {
			args := []core.Value{core.Num(float64(500 * (i + 1)))}
			predSteps = append(predSteps, SequenceStep{Interface: iface, Analysis: a, Args: args})
			runSteps = append(runSteps, RunStep{Module: m, Args: args})
		}
		predicted, predFinal, err := PredictSequence(predSteps, map[string]bool{"radio_on": initial})
		if err != nil {
			t.Fatal(err)
		}
		actual, runFinal, err := RunSequence(runSteps, bindings, map[string]bool{"radio_on": initial})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(predicted-actual) > 1e-12*(1+actual) {
			t.Fatalf("initial=%v: predicted %v != actual %v", initial, predicted, actual)
		}
		if predFinal["radio_on"] != runFinal["radio_on"] {
			t.Fatalf("final states disagree: %v vs %v", predFinal, runFinal)
		}
	}
}

func TestSecondCallerCheaperBecauseOfSideEffect(t *testing.T) {
	// The paper's point verbatim: the app that runs after a WiFi user
	// consumes less energy than if it had been first.
	bindings := map[string]*core.Interface{"radio": radioIface()}
	first, _, err := RunSequence([]RunStep{
		{Module: wifiModule(), Args: []core.Value{core.Num(1000)}},
	}, bindings, map[string]bool{"radio_on": false})
	if err != nil {
		t.Fatal(err)
	}
	both, _, err := RunSequence([]RunStep{
		{Module: wifiModule(), Args: []core.Value{core.Num(1000)}},
		{Module: wifiModule(), Args: []core.Value{core.Num(1000)}},
	}, bindings, map[string]bool{"radio_on": false})
	if err != nil {
		t.Fatal(err)
	}
	second := both - first
	if second >= first {
		t.Fatalf("second caller (%v) should be cheaper than first (%v)", second, first)
	}
}

func TestWithinCallStateResolution(t *testing.T) {
	// A module that sets state unconditionally and then reads it in the
	// same call: the read resolves statically, no ECV is emitted.
	m := &Module{
		Name: "warmup_then_use",
		Body: []Instr{
			SetState{State: "warm", Value: true},
			StateIf{State: "warm", PTrue: 0.1,
				Then: []Instr{Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1)}}},
				Else: []Instr{Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(100)}}},
			},
		},
	}
	src, err := Extract(m, map[string]string{"hw": "hw"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "ecv warm") {
		t.Fatalf("statically-resolved state still produced an ECV:\n%s", src)
	}
	compiled, err := eil.Compile(src, map[string]*core.Interface{"hw": hwIface()})
	if err != nil {
		t.Fatal(err)
	}
	j, err := compiled["warmup_then_use"].ExpectedJoules("run")
	if err != nil {
		t.Fatal(err)
	}
	if float64(j) != 2 { // hw.op(1) with the test hwIface (2*n)
		t.Fatalf("resolved branch energy %v, want 2", j)
	}
	// Ground truth agrees regardless of the initial state.
	truth, err := Run(m, map[string]*core.Interface{"hw": hwIface()}, nil,
		map[string]bool{"warm": false})
	if err != nil {
		t.Fatal(err)
	}
	if truth != 2 {
		t.Fatalf("implementation %v, want 2", truth)
	}
}

func TestTaintedStateRejected(t *testing.T) {
	m := &Module{
		Name:   "flaky",
		Params: []string{"n"},
		Body: []Instr{
			If{Cond: Cond{Op: ">", A: Arg("n"), B: Num(0)},
				Then: []Instr{SetState{State: "s", Value: true}}},
			StateIf{State: "s", PTrue: 0.5,
				Then: []Instr{Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1)}}}},
		},
	}
	if _, err := Extract(m, map[string]string{"hw": "hw"}); err == nil ||
		!strings.Contains(err.Error(), "path-sensitive") {
		t.Fatalf("tainted state read accepted: %v", err)
	}
}

func TestConditionalEffectReported(t *testing.T) {
	m := &Module{
		Name:   "maybe_on",
		Params: []string{"n"},
		Body: []Instr{
			If{Cond: Cond{Op: ">", A: Arg("n"), B: Num(0)},
				Then: []Instr{SetState{State: "s", Value: true}}},
			Charge{Binding: "hw", Method: "op", Args: []*Expr{Num(1)}},
		},
	}
	a, err := Analyze(m, map[string]string{"hw": "hw"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Effects) != 1 || !a.Effects[0].Conditional {
		t.Fatalf("effects = %+v, want one conditional", a.Effects)
	}
	// PredictSequence must refuse to thread conditional effects.
	compiled, err := eil.Compile(a.EIL, map[string]*core.Interface{"hw": hwIface()})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = PredictSequence([]SequenceStep{{
		Interface: compiled["maybe_on"], Analysis: a, Args: []core.Value{core.Num(1)},
	}}, nil)
	if err == nil || !strings.Contains(err.Error(), "conditional") {
		t.Fatalf("conditional effect threaded: %v", err)
	}
}

func TestPredictSequenceValidation(t *testing.T) {
	if _, _, err := PredictSequence([]SequenceStep{{}}, nil); err == nil {
		t.Fatal("incomplete step accepted")
	}
	// Unset state read.
	m := wifiModule()
	a, err := Analyze(m, map[string]string{"radio": "wifi_radio"})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := eil.Compile(a.EIL, map[string]*core.Interface{"wifi_radio": radioIface()})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = PredictSequence([]SequenceStep{{
		Interface: compiled["wifi_send"], Analysis: a, Args: []core.Value{core.Num(1)},
	}}, nil)
	if err == nil || !strings.Contains(err.Error(), "unset state") {
		t.Fatalf("unset state accepted: %v", err)
	}
}
