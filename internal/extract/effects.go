package extract

import (
	"fmt"
	"sort"
	"strings"

	"energyclarity/internal/core"
)

// This file implements the side-effects half of §4.2's analysis: "The
// latter is important: for example, if an app causes a smartphone's WiFi
// radio to turn on, subsequent apps using WiFi will consume less energy
// than if it had been them turning the radio on — this is a side effect."
//
// In the IR, side effects are SetState instructions: the module flips a
// hidden state variable that StateIf branches (its own, or other modules')
// read. A single-call energy interface cannot express cross-call effects
// directly — they are exactly the "past inputs and actions" §3 folds into
// ECVs — so the analyzer (i) reports each module's state transitions as
// part of its interface, and (ii) lets a resource manager compose
// sequence-level predictions by threading the declared transitions through
// per-call evaluations (see SequenceEnergy).

// SetState flips a hidden state variable; subsequent StateIf branches (in
// this call or later calls) observe the new value.
type SetState struct {
	State string
	Value bool
}

func (SetState) isInstr() {}

// Effect describes one state transition a module performs.
type Effect struct {
	State string
	Value bool
	// Conditional is true when the transition happens only on some paths.
	Conditional bool
}

func (e Effect) String() string {
	s := fmt.Sprintf("sets %s=%v", e.State, e.Value)
	if e.Conditional {
		s += " (conditionally)"
	}
	return s
}

// Analysis is the full §4.2 result for one module: the derived interface
// source plus the module's side effects on hidden state.
type Analysis struct {
	EIL     string
	Effects []Effect
	// Reads lists the hidden state variables the module's energy depends
	// on (they appear as ECVs in the emitted interface).
	Reads []string
}

// Analyze derives the module's energy interface and its side-effect
// summary. The emitted interface's doc string carries the effects, so a
// human reading the EIL sees them too.
func Analyze(m *Module, usesTargets map[string]string) (*Analysis, error) {
	effects, reads, err := collectEffects(m)
	if err != nil {
		return nil, err
	}
	src, err := Extract(m, usesTargets)
	if err != nil {
		return nil, err
	}
	if len(effects) > 0 {
		// Surface the effects in the interface doc string so a human
		// reading the emitted EIL sees them (Extract emits a fixed doc;
		// extend it).
		var notes []string
		for _, e := range effects {
			notes = append(notes, e.String())
		}
		doc := "extracted from implementation; side effects: " + strings.Join(notes, "; ")
		src = strings.Replace(src,
			fmt.Sprintf("interface %s %q {", m.Name, "extracted from implementation"),
			fmt.Sprintf("interface %s %q {", m.Name, doc), 1)
	}
	return &Analysis{EIL: src, Effects: effects, Reads: reads}, nil
}

// collectEffects walks the IR gathering state writes (with path
// conditionality) and state reads.
func collectEffects(m *Module) ([]Effect, []string, error) {
	if m == nil {
		return nil, nil, fmt.Errorf("extract: nil module")
	}
	writes := map[string]*Effect{}
	reads := map[string]bool{}
	var walk func(body []Instr, conditional bool) error
	walk = func(body []Instr, conditional bool) error {
		for _, in := range body {
			switch i := in.(type) {
			case SetState:
				if prev, ok := writes[i.State]; ok {
					if prev.Value != i.Value {
						prev.Conditional = true // flips both ways: net effect path-dependent
					}
					prev.Conditional = prev.Conditional || conditional
					prev.Value = i.Value
					continue
				}
				writes[i.State] = &Effect{State: i.State, Value: i.Value, Conditional: conditional}
			case If:
				if err := walk(i.Then, true); err != nil {
					return err
				}
				if err := walk(i.Else, true); err != nil {
					return err
				}
			case Loop:
				if err := walk(i.Body, true); err != nil {
					return err
				}
			case StateIf:
				reads[i.State] = true
				if err := walk(i.Then, true); err != nil {
					return err
				}
				if err := walk(i.Else, true); err != nil {
					return err
				}
			case Charge, Let:
				// no state interaction
			default:
				return fmt.Errorf("extract: unknown instruction %T", in)
			}
		}
		return nil
	}
	if err := walk(m.Body, false); err != nil {
		return nil, nil, err
	}
	var effects []Effect
	for _, e := range writes {
		effects = append(effects, *e)
	}
	sort.Slice(effects, func(i, j int) bool { return effects[i].State < effects[j].State })
	var readList []string
	for s := range reads {
		readList = append(readList, s)
	}
	sort.Strings(readList)
	return effects, readList, nil
}

// PredictSequence is the resource-manager composition for side effects: it
// predicts a call sequence's total energy by evaluating each call's
// *extracted interface* with the hidden state pinned to its current value,
// then applying the call's declared Effects to the threaded state. This is
// how "subsequent apps using WiFi consume less energy" becomes predictable
// a priori: the first call's declared effect changes the ECV assignment
// used for the next call. Conditional effects cannot be threaded exactly
// and return an error (the caller must fall back to distribution-level
// reasoning).
//
// The prediction must match RunSequence exactly for unconditional effects;
// the tests and the E5 experiment verify this.
func PredictSequence(steps []SequenceStep, initial map[string]bool) (float64, map[string]bool, error) {
	state := map[string]bool{}
	for k, v := range initial {
		state[k] = v
	}
	total := 0.0
	for i, st := range steps {
		if st.Analysis == nil || st.Interface == nil {
			return 0, nil, fmt.Errorf("extract: sequence step %d incomplete", i)
		}
		assign := map[string]core.Value{}
		for _, name := range st.Analysis.Reads {
			v, ok := state[name]
			if !ok {
				return 0, nil, fmt.Errorf("extract: step %d reads unset state %q", i, name)
			}
			assign[name] = core.Bool(v)
		}
		d, err := st.Interface.Eval("run", st.Args, core.FixedAssignment(assign))
		if err != nil {
			return 0, nil, fmt.Errorf("extract: step %d: %w", i, err)
		}
		total += d.Mean()
		for _, e := range st.Analysis.Effects {
			if e.Conditional {
				return 0, nil, fmt.Errorf("extract: step %d: conditional effect on %q cannot be threaded exactly",
					i, e.State)
			}
			state[e.State] = e.Value
		}
	}
	return total, state, nil
}

// SequenceStep is one call in a predicted sequence: the compiled extracted
// interface, its analysis (for reads/effects), and the call arguments.
type SequenceStep struct {
	Interface *core.Interface
	Analysis  *Analysis
	Args      []core.Value
}

// RunSequence executes a sequence of module calls against the IR
// implementation, threading hidden state through SetState instructions.
// It is the ground truth PredictSequence is verified against.
func RunSequence(steps []RunStep, bindings map[string]*core.Interface,
	initial map[string]bool) (float64, map[string]bool, error) {

	state := map[string]bool{}
	for k, v := range initial {
		state[k] = v
	}
	total := 0.0
	for i, st := range steps {
		e, err := runWithState(st.Module, bindings, st.Args, state)
		if err != nil {
			return 0, nil, fmt.Errorf("extract: sequence step %d: %w", i, err)
		}
		total += e
	}
	return total, state, nil
}

// RunStep is one call in an executed sequence.
type RunStep struct {
	Module *Module
	Args   []core.Value
}
