package autoopt

import (
	"context"
	"math"
	"reflect"
	"testing"

	"energyclarity/internal/nn"
)

func TestGridCanonicalOrder(t *testing.T) {
	s := Space{
		{Name: "batch", Values: []float64{1, 2}},
		{Name: "level", Values: []float64{0, 1, 2}},
	}
	grid, err := s.Grid(0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{1, 0}, {1, 1}, {1, 2},
		{2, 0}, {2, 1}, {2, 2},
	}
	if !reflect.DeepEqual(grid, want) {
		t.Fatalf("grid = %v, want %v", grid, want)
	}
}

func TestGridEmptySpaceIsNeutralProduct(t *testing.T) {
	grid, err := Space(nil).Grid(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 1 || len(grid[0]) != 0 {
		t.Fatalf("empty space grid = %v, want one zero-knob configuration", grid)
	}
}

func TestGridValidation(t *testing.T) {
	cases := map[string]Space{
		"empty name":      {{Name: "", Values: []float64{1}}},
		"duplicate knob":  {{Name: "b", Values: []float64{1}}, {Name: "b", Values: []float64{2}}},
		"no values":       {{Name: "b", Values: nil}},
		"NaN value":       {{Name: "b", Values: []float64{math.NaN()}}},
		"Inf value":       {{Name: "b", Values: []float64{math.Inf(1)}}},
		"duplicate value": {{Name: "b", Values: []float64{3, 3}}},
	}
	for name, s := range cases {
		if _, err := s.Grid(0); err == nil {
			t.Errorf("%s: Grid accepted invalid space %v", name, s)
		}
	}
	big := Space{{Name: "k", Values: make([]float64, 10)}}
	for i := range big[0].Values {
		big[0].Values[i] = float64(i)
	}
	if _, err := big.Grid(5); err == nil {
		t.Error("Grid accepted a space beyond its cap")
	}
}

func TestParetoFrontierPrunesAndOrders(t *testing.T) {
	pts := []Point{
		{Knobs: []float64{1}, EnergyJ: 10, LatencyMs: 1},
		{Knobs: []float64{2}, EnergyJ: 6, LatencyMs: 2},
		{Knobs: []float64{3}, EnergyJ: 8, LatencyMs: 3}, // dominated by {2}
		{Knobs: []float64{4}, EnergyJ: 6, LatencyMs: 4}, // dominated by {2} (equal E, worse L)
		{Knobs: []float64{5}, EnergyJ: 4, LatencyMs: 4},
		{Knobs: []float64{6}, EnergyJ: 12, LatencyMs: 1}, // dominated by {1} (equal L, worse E)
	}
	f := ParetoFrontier(pts)
	wantKnobs := []float64{1, 2, 5}
	if len(f) != len(wantKnobs) {
		t.Fatalf("frontier = %+v, want 3 points", f)
	}
	for i, p := range f {
		if p.Knobs[0] != wantKnobs[i] {
			t.Fatalf("frontier[%d].Knobs = %v, want %v", i, p.Knobs, wantKnobs[i])
		}
		if i > 0 && (p.LatencyMs <= f[i-1].LatencyMs || p.EnergyJ >= f[i-1].EnergyJ) {
			t.Fatalf("frontier not strictly ordered at %d: %+v", i, f)
		}
	}
}

func TestParetoFrontierExactTieKeepsLexSmallest(t *testing.T) {
	pts := []Point{
		{Knobs: []float64{2, 9}, EnergyJ: 5, LatencyMs: 5},
		{Knobs: []float64{2, 3}, EnergyJ: 5, LatencyMs: 5},
		{Knobs: []float64{1, 99}, EnergyJ: 5, LatencyMs: 5},
	}
	f := ParetoFrontier(pts)
	if len(f) != 1 || f[0].Knobs[0] != 1 {
		t.Fatalf("exact tie kept %+v, want the lex-smallest knob vector", f)
	}
}

func TestRecommendAndDigest(t *testing.T) {
	f := []Point{
		{Knobs: []float64{1}, EnergyJ: 10, LatencyMs: 1},
		{Knobs: []float64{2}, EnergyJ: 6, LatencyMs: 2},
		{Knobs: []float64{3}, EnergyJ: 4, LatencyMs: 5},
	}
	if r := Recommend(f, 3); r == nil || r.Knobs[0] != 2 {
		t.Fatalf("Recommend(3ms) = %+v, want the 2ms point", r)
	}
	if r := Recommend(f, 0.5); r != nil {
		t.Fatalf("Recommend below every point = %+v, want nil", r)
	}
	if r := Recommend(f, 100); r == nil || r.Knobs[0] != 3 {
		t.Fatalf("Recommend(∞) = %+v, want the cheapest point", r)
	}

	s := Space{{Name: "k", Values: []float64{1, 2, 3}}}
	d1, d2 := Digest(s, f), Digest(s, f)
	if d1 != d2 || d1 == 0 {
		t.Fatalf("digest unstable: %x vs %x", d1, d2)
	}
	if Digest(s, f[:2]) == d1 {
		t.Fatal("digest insensitive to frontier contents")
	}
}

// TestSweepSkipsNonFinite pins the NaN/Inf policy: unmeasurable points
// drop from the frontier deterministically instead of poisoning it.
func TestSweepSkipsNonFinite(t *testing.T) {
	spec := Spec{Space: Space{{Name: "k", Values: []float64{1, 2, 3}}}, SLOMs: 10}
	eval := func(ctx context.Context, space Space, grid [][]float64) ([]Sample, error) {
		out := make([]Sample, len(grid))
		for i, cfg := range grid {
			switch cfg[0] {
			case 1:
				out[i] = Sample{EnergyJ: math.NaN(), LatencyMs: 1, Evals: 2}
			case 2:
				out[i] = Sample{EnergyJ: 5, LatencyMs: math.Inf(1), Evals: 2}
			default:
				out[i] = Sample{EnergyJ: 3, LatencyMs: 4, Evals: 2, MemoServed: 1}
			}
		}
		return out, nil
	}
	res, err := Sweep(context.Background(), spec, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 2 || res.Evaluated != 1 || len(res.Frontier) != 1 {
		t.Fatalf("skip accounting wrong: %+v", res)
	}
	if res.Evals != 6 || res.MemoServed != 1 {
		t.Fatalf("eval accounting wrong: evals=%d memo=%d", res.Evals, res.MemoServed)
	}
	if res.Recommended == nil || res.MaxPerf == nil || res.Recommended.Knobs[0] != 3 {
		t.Fatalf("recommendation wrong: %+v", res)
	}
}

// TestSweepMoECoreEvaluator drives the whole pure path against the real
// MoE fixture: the frontier must be non-trivial (≥ 5 points), the SLO
// pick must save ≥ 20% over the max-performance point, and a repeat
// sweep must be digest-identical.
func TestSweepMoECoreEvaluator(t *testing.T) {
	stack, err := nn.MoEEILStack()
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Space: Space{
			{Name: "batch", Values: []float64{1, 2, 4, 8, 16}},
			{Name: "level", Values: []float64{0, 1, 2, 3}},
			{Name: "replicas", Values: []float64{1, 2, 4}},
		},
		SLOMs: 25,
	}
	eval := CoreEvaluator(stack, "energy", "latency", coreExpected())
	res, err := Sweep(context.Background(), spec, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs != 60 || res.Skipped != 0 {
		t.Fatalf("sweep covered %d configs, skipped %d", res.Configs, res.Skipped)
	}
	if len(res.Frontier) < 5 {
		t.Fatalf("frontier has %d points, want >= 5: %+v", len(res.Frontier), res.Frontier)
	}
	if res.Recommended == nil {
		t.Fatalf("SLO %v ms unmeetable: frontier %+v", spec.SLOMs, res.Frontier)
	}
	if res.SavingsFrac < 0.20 {
		t.Fatalf("SLO pick saves %.1f%%, want >= 20%% (recommended %+v vs max-perf %+v)",
			res.SavingsFrac*100, res.Recommended, res.MaxPerf)
	}
	again, err := Sweep(context.Background(), spec, eval)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != res.Digest {
		t.Fatalf("repeat sweep digest %x != %x", again.Digest, res.Digest)
	}
}
