package autoopt

import (
	"context"
	"fmt"

	"energyclarity/internal/core"
)

// CoreEvaluator sweeps an in-process interface: each configuration's
// knob vector becomes the argument list of energyMethod (objective: the
// distribution's mean, J/request) and latencyMethod (objective: the
// distribution's exact p99, ms/request). This is the offline path behind
// `eic optimize`; the served paths (POST /v1/optimize and the
// /v1/evalbatch fleet client) live in internal/eisvc.
func CoreEvaluator(iface *core.Interface, energyMethod, latencyMethod string, opts core.EvalOptions) Evaluator {
	return func(ctx context.Context, space Space, grid [][]float64) ([]Sample, error) {
		out := make([]Sample, len(grid))
		for i, cfg := range grid {
			args := make([]core.Value, len(cfg))
			for j, v := range cfg {
				args[j] = core.Num(v)
			}
			ed, err := iface.EvalCtx(ctx, energyMethod, args, opts)
			if err != nil {
				return nil, fmt.Errorf("autoopt: %s.%s%v: %w", iface.Name(), energyMethod, cfg, err)
			}
			ld, err := iface.EvalCtx(ctx, latencyMethod, args, opts)
			if err != nil {
				return nil, fmt.Errorf("autoopt: %s.%s%v: %w", iface.Name(), latencyMethod, cfg, err)
			}
			out[i] = Sample{EnergyJ: ed.Mean(), LatencyMs: ld.Quantile(0.99), Evals: 2}
		}
		return out, nil
	}
}
