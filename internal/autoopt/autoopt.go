// Package autoopt is an ML.ENERGY-style auto-optimizer for served energy
// interfaces: given a knob space (batch size, DVFS level, replica count,
// model variant, …) and a p99 latency SLO, it sweeps every configuration,
// prunes dominated operating points, and fits the exact energy/latency
// Pareto frontier with deterministic tie-breaking — so an operator asks
// "cheapest operating point under p99 ≤ X ms" instead of issuing raw
// evals.
//
// The package is pure math plus an Evaluator seam. It does not know about
// the daemon: internal/eisvc serves it as POST /v1/optimize (evaluating
// through the node's memoized engine, so repeat sweeps are memo-served)
// and also provides a fleet-client evaluator over /v1/evalbatch;
// cmd/eic runs it offline against an in-process interface via
// CoreEvaluator.
//
// Determinism contract: the grid enumerates knobs in declaration order
// (last knob fastest), the frontier sorts by (latency asc, energy asc,
// knob vector lex), exact-duplicate (energy, latency) pairs collapse to
// the lexicographically smallest knob vector, and Digest folds the
// frontier through FNV-1a over exact Float64bits — two sweeps that saw
// bit-identical samples produce bit-identical digests at any evaluation
// parallelism.
package autoopt

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// DefaultMaxConfigs caps the knob-space cross product a single sweep may
// enumerate unless the caller raises it.
const DefaultMaxConfigs = 4096

// Knob is one named serving knob with its discrete candidate values, in
// the order they are passed as an argument to the swept methods.
type Knob struct {
	Name   string
	Values []float64
}

// Space is an ordered knob list. Order is semantic twice over: knob i
// supplies argument i of the swept methods, and the grid enumerates the
// last knob fastest.
type Space []Knob

// Validate rejects spaces the sweep cannot treat deterministically:
// empty or duplicate knob names, empty value lists, duplicate or
// non-finite values. An empty Space is valid — its grid is the single
// zero-knob configuration (the neutral product).
func (s Space) Validate() error {
	seen := map[string]bool{}
	for _, k := range s {
		if k.Name == "" {
			return fmt.Errorf("autoopt: knob with empty name")
		}
		if seen[k.Name] {
			return fmt.Errorf("autoopt: duplicate knob %q", k.Name)
		}
		seen[k.Name] = true
		if len(k.Values) == 0 {
			return fmt.Errorf("autoopt: knob %q has no values", k.Name)
		}
		vals := map[float64]bool{}
		for _, v := range k.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("autoopt: knob %q has non-finite value %v", k.Name, v)
			}
			if vals[v] {
				return fmt.Errorf("autoopt: knob %q repeats value %v", k.Name, v)
			}
			vals[v] = true
		}
	}
	return nil
}

// Size returns the cross-product cardinality of the space.
func (s Space) Size() int {
	n := 1
	for _, k := range s {
		n *= len(k.Values)
	}
	return n
}

// Grid enumerates every configuration of the space in canonical order
// (first knob slowest, last fastest), failing if the cross product
// exceeds limit (0 means DefaultMaxConfigs). Each configuration is a
// value vector aligned with the space's knob order.
func (s Space) Grid(limit int) ([][]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if limit <= 0 {
		limit = DefaultMaxConfigs
	}
	n := s.Size()
	if n > limit {
		return nil, fmt.Errorf("autoopt: knob space has %d configurations, cap is %d", n, limit)
	}
	grid := make([][]float64, 0, n)
	idx := make([]int, len(s))
	for {
		cfg := make([]float64, len(s))
		for i, k := range s {
			cfg[i] = k.Values[idx[i]]
		}
		grid = append(grid, cfg)
		i := len(s) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return grid, nil
}

// Sample is one configuration's measured objectives: the energy
// distribution's mean (joules per request) and the latency
// distribution's exact p99 (milliseconds per request — the abstract-unit
// convention, ms riding the Joules channel). Evals/MemoServed account
// the evaluations the sample cost and how many of them a cache answered.
type Sample struct {
	EnergyJ    float64
	LatencyMs  float64
	Evals      int
	MemoServed int
}

// Evaluator resolves every grid configuration to a Sample, in grid
// order. Implementations may evaluate concurrently but must return
// bit-identical samples for identical inputs — the engine's determinism
// guarantee makes that free for eval-backed evaluators.
type Evaluator func(ctx context.Context, space Space, grid [][]float64) ([]Sample, error)

// Point is one operating point: a knob value vector (space order) and
// its two objectives.
type Point struct {
	Knobs     []float64
	EnergyJ   float64
	LatencyMs float64
}

// Spec is one sweep's inputs.
type Spec struct {
	Space Space
	// SLOMs is the p99 latency ceiling Recommend selects under.
	SLOMs float64
	// MaxConfigs caps Grid (0 = DefaultMaxConfigs).
	MaxConfigs int
}

// Result is one sweep's outcome.
type Result struct {
	Space      Space
	Configs    int // grid size
	Evaluated  int // configurations with finite objectives
	Skipped    int // configurations dropped for non-finite objectives
	Evals      int // evaluations issued (sum of Sample.Evals)
	MemoServed int
	// Frontier is the exact Pareto frontier, latency ascending with
	// strictly decreasing energy.
	Frontier []Point
	// Digest is the FNV-1a fold of the frontier (knobs and objectives at
	// exact Float64bits), the bit-determinism handle.
	Digest uint64
	SLOMs  float64
	// Recommended is the cheapest point with p99 ≤ SLOMs (nil if the SLO
	// is unmeetable); MaxPerf is the naive max-performance choice — the
	// minimum-latency point — the baseline Savings compares against.
	Recommended *Point
	MaxPerf     *Point
	// SavingsFrac is 1 - Recommended.EnergyJ/MaxPerf.EnergyJ when both
	// exist (0 otherwise): the fraction of energy the SLO-aware choice
	// saves over always running flat out.
	SavingsFrac float64
}

// Sweep enumerates spec's grid, resolves it through eval, and fits the
// frontier. Configurations whose objectives come back NaN or ±Inf are
// skipped deterministically (an unmeasurable point cannot sit on an
// exact frontier); everything else is pure.
func Sweep(ctx context.Context, spec Spec, eval Evaluator) (*Result, error) {
	grid, err := spec.Space.Grid(spec.MaxConfigs)
	if err != nil {
		return nil, err
	}
	samples, err := eval(ctx, spec.Space, grid)
	if err != nil {
		return nil, err
	}
	if len(samples) != len(grid) {
		return nil, fmt.Errorf("autoopt: evaluator returned %d samples for %d configurations", len(samples), len(grid))
	}
	res := &Result{Space: spec.Space, Configs: len(grid), SLOMs: spec.SLOMs}
	points := make([]Point, 0, len(grid))
	for i, s := range samples {
		res.Evals += s.Evals
		res.MemoServed += s.MemoServed
		if !finite(s.EnergyJ) || !finite(s.LatencyMs) {
			res.Skipped++
			continue
		}
		points = append(points, Point{Knobs: grid[i], EnergyJ: s.EnergyJ, LatencyMs: s.LatencyMs})
	}
	res.Evaluated = len(points)
	res.Frontier = ParetoFrontier(points)
	res.Digest = Digest(spec.Space, res.Frontier)
	if len(res.Frontier) > 0 {
		mp := res.Frontier[0]
		res.MaxPerf = &mp
		if r := Recommend(res.Frontier, spec.SLOMs); r != nil {
			rr := *r
			res.Recommended = &rr
			if mp.EnergyJ > 0 {
				res.SavingsFrac = 1 - rr.EnergyJ/mp.EnergyJ
			}
		}
	}
	return res, nil
}

// ParetoFrontier returns the non-dominated subset of points, sorted by
// (latency asc, energy asc, knob vector lex). A point is dominated when
// another is ≤ in both objectives and < in at least one; exact
// (energy, latency) duplicates collapse to the lexicographically
// smallest knob vector. The input is not modified.
func ParetoFrontier(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].LatencyMs != sorted[j].LatencyMs {
			return sorted[i].LatencyMs < sorted[j].LatencyMs
		}
		if sorted[i].EnergyJ != sorted[j].EnergyJ {
			return sorted[i].EnergyJ < sorted[j].EnergyJ
		}
		return lexLess(sorted[i].Knobs, sorted[j].Knobs)
	})
	var out []Point
	for _, p := range sorted {
		// After the sort, a point joins the frontier iff it is strictly
		// cheaper than everything already kept (ties in both objectives
		// were sorted behind their lex-smallest representative).
		if len(out) == 0 || p.EnergyJ < out[len(out)-1].EnergyJ {
			out = append(out, p)
		}
	}
	return out
}

// Recommend returns the cheapest frontier point whose p99 latency meets
// the SLO, nil when none does. Because frontier energy strictly
// decreases as latency grows, that is the last frontier point within the
// ceiling — a deterministic pick.
func Recommend(frontier []Point, sloMs float64) *Point {
	var best *Point
	for i := range frontier {
		if frontier[i].LatencyMs <= sloMs {
			best = &frontier[i]
		}
	}
	return best
}

// Digest folds a frontier through FNV-1a: knob names, then each point's
// knob values and objectives at exact Float64bits, little-endian. Equal
// digests mean bit-identical frontiers over the same space.
func Digest(space Space, frontier []Point) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range space {
		h.Write([]byte(k.Name))
		h.Write([]byte{0})
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(frontier)))
	h.Write(buf[:])
	for _, p := range frontier {
		for _, v := range p.Knobs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.EnergyJ))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.LatencyMs))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
