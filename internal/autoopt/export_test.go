package autoopt

import "energyclarity/internal/core"

func coreExpected() core.EvalOptions {
	return core.EvalOptions{Mode: core.ModeExpected, EnumLimit: 1 << 12}
}
