package opt

import (
	"fmt"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
)

// declineError marks a method (or a specialization) as outside the
// compiled subset; core falls back to the tree-walking interpreter, which
// defines the reference semantics — including the runtime error the
// construct would produce. Declining is therefore always correct.
type declineError struct{ reason string }

func (e *declineError) Error() string { return "opt: declined: " + e.reason }

func decline(format string, args ...interface{}) error {
	return &declineError{reason: fmt.Sprintf(format, args...)}
}

// maxInlineDepth mirrors core's maxCallDepth: a static call chain this
// deep would make the interpreter fail at runtime, so we decline and let
// it. Cycles (recursion) decline separately.
const maxInlineDepth = 256

// lowerer turns one method (with every reachable callee inlined) into a
// single irBlock. It declines on Go-native callees (Method.Source == nil),
// unresolvable bindings/methods, arity mismatches the interpreter would
// reject at runtime, recursion, and excessive static call depth.
type lowerer struct {
	nslots int
	stack  []frameKey
}

type frameKey struct {
	iface  *core.Interface
	method string
}

// lenv resolves names to slots within one frame, mirroring the
// interpreter's lexically scoped environment.
type lenv struct {
	parent *lenv
	vars   map[string]*irSlot
}

func (e *lenv) lookup(name string) (*irSlot, bool) {
	for s := e; s != nil; s = s.parent {
		if sl, ok := s.vars[name]; ok {
			return sl, true
		}
	}
	return nil, false
}

// frame is the lowering context of one (possibly inlined) method body.
type frame struct {
	iface *core.Interface
	path  string // qualified binding path of iface within the root
	fn    *eil.FuncDecl
}

func (l *lowerer) newSlot(name string) *irSlot {
	l.nslots++
	return &irSlot{name: name, id: l.nslots, reg: -1}
}

func qualify(path, name string) string {
	if path == "" {
		return name
	}
	return path + "." + name
}

// ecvType derives the static type of an ECV read from the declared
// support: all-num and all-bool supports get typed banks, anything mixed
// (or empty) stays dynamic.
func ecvType(dist []core.Weighted) irType {
	t := tUnknown
	for _, w := range dist {
		switch w.V.Kind() {
		case core.KindNum:
			t = joinType(t, tNum)
		case core.KindBool:
			t = joinType(t, tBool)
		default:
			return tVal
		}
	}
	if t == tUnknown {
		return tVal
	}
	return t
}

// lowerMethod lowers fn (a method of iface, bound at path) into an
// irBlock, binding its parameters to argExprs. The interpreter evaluates
// call arguments once and binds the values, so arguments become synthetic
// lets (noStep: parameter binding costs no interpreter statement step).
func (l *lowerer) lowerMethod(iface *core.Interface, path string, fn *eil.FuncDecl, argExprs []irExpr, callStep int64) (*irBlock, error) {
	key := frameKey{iface: iface, method: fn.Name}
	for _, k := range l.stack {
		if k == key {
			return nil, decline("recursive call to %s.%s", iface.Name(), fn.Name)
		}
	}
	if len(l.stack) >= maxInlineDepth {
		return nil, decline("static call depth exceeds %d", maxInlineDepth)
	}
	l.stack = append(l.stack, key)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	fr := &frame{iface: iface, path: path, fn: fn}
	env := &lenv{vars: map[string]*irSlot{}}
	var stmts []irStmt
	switch {
	case len(fn.Params) == len(argExprs):
		for i, p := range fn.Params {
			slot := l.newSlot(p)
			stmts = append(stmts, &irLet{slot: slot, init: argExprs[i], noStep: true})
			env.vars[p] = slot
		}
	case len(fn.Params) == 0:
		// The interpreter accepts any argument count for zero-parameter
		// methods; the arguments are still evaluated (they may error), so
		// bind them to dead slots.
		for i, a := range argExprs {
			stmts = append(stmts, &irLet{slot: l.newSlot(fmt.Sprintf("_arg%d", i)), init: a, noStep: true})
		}
	default:
		// The interpreter rejects this at runtime; let it.
		return nil, decline("call to %s.%s: %d args, want %d",
			iface.Name(), fn.Name, len(argExprs), len(fn.Params))
	}
	body, err := l.lowerBlock(fr, env, fn.Body)
	if err != nil {
		return nil, err
	}
	return &irBlock{stmts: append(stmts, body...), w0: callStep}, nil
}

func (l *lowerer) lowerBlock(fr *frame, parent *lenv, b *eil.Block) ([]irStmt, error) {
	env := &lenv{parent: parent, vars: map[string]*irSlot{}}
	var out []irStmt
	for _, st := range b.Stmts {
		switch s := st.(type) {
		case *eil.LetStmt:
			init, err := l.lowerExpr(fr, env, s.Init)
			if err != nil {
				return nil, err
			}
			slot := l.newSlot(s.Name)
			out = append(out, &irLet{slot: slot, init: init})
			env.vars[s.Name] = slot // visible after the init, like the interpreter
		case *eil.AssignStmt:
			x, err := l.lowerExpr(fr, env, s.Expr)
			if err != nil {
				return nil, err
			}
			slot, ok := env.lookup(s.Name)
			if !ok {
				return nil, decline("assignment to undeclared %q", s.Name)
			}
			slot.mutated = true
			out = append(out, &irAssign{slot: slot, x: x})
		case *eil.IfStmt:
			cond, err := l.lowerExpr(fr, env, s.Cond)
			if err != nil {
				return nil, err
			}
			then, err := l.lowerBlock(fr, env, s.Then)
			if err != nil {
				return nil, err
			}
			var els []irStmt
			if s.Else != nil {
				if els, err = l.lowerBlock(fr, env, s.Else); err != nil {
					return nil, err
				}
			}
			out = append(out, &irIf{cond: cond, then: then, els: els})
		case *eil.ForStmt:
			from, err := l.lowerExpr(fr, env, s.From)
			if err != nil {
				return nil, err
			}
			to, err := l.lowerExpr(fr, env, s.To)
			if err != nil {
				return nil, err
			}
			slot := l.newSlot(s.Var)
			slot.mutated = true // varies per iteration: never a constant
			slot.t = tNum
			loopEnv := &lenv{parent: env, vars: map[string]*irSlot{s.Var: slot}}
			body, err := l.lowerBlock(fr, loopEnv, s.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, &irFor{slot: slot, from: from, to: to, body: body})
		case *eil.ReturnStmt:
			x, err := l.lowerExpr(fr, env, s.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, &irReturn{x: x})
		default:
			return nil, decline("unknown statement %T", st)
		}
	}
	return out, nil
}

func (l *lowerer) lowerExpr(fr *frame, env *lenv, e eil.Expr) (irExpr, error) {
	switch x := e.(type) {
	case *eil.NumLit:
		return irConst{v: core.Num(x.Val), w: 1}, nil
	case *eil.BoolLit:
		return irConst{v: core.Bool(x.Val), w: 1}, nil
	case *eil.StrLit:
		return irConst{v: core.Str(x.Val), w: 1}, nil
	case *eil.Ident:
		if slot, ok := env.lookup(x.Name); ok {
			return irVar{slot: slot}, nil
		}
		// The checker guarantees unresolved identifiers are ECVs of the
		// enclosing interface.
		for _, ecv := range fr.iface.ECVs() {
			if ecv.Name == x.Name {
				return irECV{qn: qualify(fr.path, x.Name), t: ecvType(ecv.Dist)}, nil
			}
		}
		return nil, decline("unresolved identifier %q", x.Name)
	case *eil.FieldExpr:
		v, err := l.lowerExpr(fr, env, x.X)
		if err != nil {
			return nil, err
		}
		return &irField{x: v, name: x.Name}, nil
	case *eil.IndexExpr:
		v, err := l.lowerExpr(fr, env, x.X)
		if err != nil {
			return nil, err
		}
		i, err := l.lowerExpr(fr, env, x.I)
		if err != nil {
			return nil, err
		}
		return &irIndex{x: v, i: i}, nil
	case *eil.UnaryExpr:
		v, err := l.lowerExpr(fr, env, x.X)
		if err != nil {
			return nil, err
		}
		return &irUnary{op: x.Op, x: v}, nil
	case *eil.BinaryExpr:
		a, err := l.lowerExpr(fr, env, x.X)
		if err != nil {
			return nil, err
		}
		b, err := l.lowerExpr(fr, env, x.Y)
		if err != nil {
			return nil, err
		}
		// Short-circuit operators become conditionals so emission
		// evaluates the right operand exactly when the interpreter would.
		switch x.Op {
		case eil.TokAndAnd:
			return &irCond{cond: a, then: b, els: irConst{v: core.Bool(false), w: 0}}, nil
		case eil.TokOrOr:
			return &irCond{cond: a, then: irConst{v: core.Bool(true), w: 0}, els: b}, nil
		}
		return &irBinary{op: x.Op, x: a, y: b}, nil
	case *eil.RecordLit:
		vals := make([]irExpr, len(x.Values))
		for i, v := range x.Values {
			lv, err := l.lowerExpr(fr, env, v)
			if err != nil {
				return nil, err
			}
			vals[i] = lv
		}
		return &irRecord{names: append([]string(nil), x.Names...), vals: vals}, nil
	case *eil.ListLit:
		elems := make([]irExpr, len(x.Elems))
		for i, el := range x.Elems {
			le, err := l.lowerExpr(fr, env, el)
			if err != nil {
				return nil, err
			}
			elems[i] = le
		}
		return &irList{elems: elems}, nil
	case *eil.CallExpr:
		args := make([]irExpr, len(x.Args))
		for i, a := range x.Args {
			la, err := l.lowerExpr(fr, env, a)
			if err != nil {
				return nil, err
			}
			args[i] = la
		}
		if x.Target == "" {
			// Builtins win over sibling methods, like the interpreter.
			if _, ok := eil.Builtin(x.Name); ok {
				return &irCall{name: x.Name, args: args}, nil
			}
			m := fr.iface.Method(x.Name)
			if m == nil {
				return nil, decline("interface %s has no method %q", fr.iface.Name(), x.Name)
			}
			return l.inline(fr.iface, fr.path, m, args)
		}
		lower := fr.iface.Binding(x.Target)
		if lower == nil {
			return nil, decline("no binding %q", x.Target)
		}
		m := lower.Method(x.Name)
		if m == nil {
			return nil, decline("binding %q (interface %s) has no method %q",
				x.Target, lower.Name(), x.Name)
		}
		return l.inline(lower, qualify(fr.path, x.Target), m, args)
	default:
		return nil, decline("unknown expression %T", e)
	}
}

func (l *lowerer) inline(iface *core.Interface, path string, m *core.Method, args []irExpr) (irExpr, error) {
	fn, ok := m.Source.(*eil.FuncDecl)
	if !ok || fn == nil {
		return nil, decline("method %s.%s has no EIL source (Go-native)", iface.Name(), m.Name)
	}
	// w0 = 1: the CallExpr's own evaluation step in the caller's frame.
	return l.lowerMethod(iface, path, fn, args, 1)
}
