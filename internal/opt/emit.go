package opt

import (
	"math"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
)

// --- typing -------------------------------------------------------------

// inferTypes assigns each slot a register bank by fixpoint over its
// assignments. EIL is dynamically typed, so a slot rebound across kinds
// lands in the boxed value bank; the overwhelmingly common case is a
// stable num or bool. Loop variables are always num.
func inferTypes(blk *irBlock) {
	for {
		changed := false
		typeStmts(blk.stmts, &changed)
		if !changed {
			break
		}
	}
	finalizeSlots(blk.stmts)
}

func typeStmts(stmts []irStmt, changed *bool) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *irLet:
			noteSlot(s.slot, typeOfWalk(s.init, changed), changed)
		case *irAssign:
			noteSlot(s.slot, typeOfWalk(s.x, changed), changed)
		case *irIf:
			typeOfWalk(s.cond, changed)
			typeStmts(s.then, changed)
			typeStmts(s.els, changed)
		case *irFor:
			noteSlot(s.slot, tNum, changed)
			typeOfWalk(s.from, changed)
			typeOfWalk(s.to, changed)
			typeStmts(s.body, changed)
		case *irReturn:
			typeOfWalk(s.x, changed)
		}
	}
}

func noteSlot(slot *irSlot, t irType, changed *bool) {
	nt := joinType(slot.t, t)
	if nt != slot.t {
		slot.t = nt
		*changed = true
	}
}

// typeOfWalk is typeOf that also descends into nested blocks (inlined
// calls inside expressions) so their slots get typed.
func typeOfWalk(e irExpr, changed *bool) irType {
	switch x := e.(type) {
	case irConst:
		return kindType(x.v)
	case irVar:
		return x.slot.t
	case irECV:
		return x.t
	case irFree:
		return x.t
	case *irUnary:
		typeOfWalk(x.x, changed)
		if x.op == eil.TokBang {
			return tBool
		}
		return tNum
	case *irBinary:
		typeOfWalk(x.x, changed)
		typeOfWalk(x.y, changed)
		switch x.op {
		case eil.TokPlus, eil.TokMinus, eil.TokStar, eil.TokSlash, eil.TokPercent:
			return tNum
		default:
			return tBool
		}
	case *irCond:
		typeOfWalk(x.cond, changed)
		wt := typeOfWalk(x.then, changed)
		we := typeOfWalk(x.els, changed)
		if b, ok := constBool(x.cond); ok {
			if b {
				return wt
			}
			return we
		}
		return joinType(wt, we)
	case *irCall:
		for _, a := range x.args {
			typeOfWalk(a, changed)
		}
		return tNum // every builtin returns num
	case *irField:
		typeOfWalk(x.x, changed)
		return tVal
	case *irIndex:
		typeOfWalk(x.x, changed)
		typeOfWalk(x.i, changed)
		return tVal
	case *irRecord:
		for _, v := range x.vals {
			typeOfWalk(v, changed)
		}
		return tVal
	case *irList:
		for _, el := range x.elems {
			typeOfWalk(el, changed)
		}
		return tVal
	case *irBlock:
		typeStmts(x.stmts, changed)
		return tNum
	case *irSteps:
		return typeOfWalk(x.x, changed)
	default:
		return tVal
	}
}

func kindType(v core.Value) irType {
	switch v.Kind() {
	case core.KindNum:
		return tNum
	case core.KindBool:
		return tBool
	default:
		return tVal
	}
}

// finalizeSlots defaults any slot the fixpoint could not ground (init
// depends on a value-typed chain) to the boxed bank.
func finalizeSlots(stmts []irStmt) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *irLet:
			if s.slot.t == tUnknown {
				s.slot.t = tVal
			}
			finalizeExpr(s.init)
		case *irAssign:
			finalizeExpr(s.x)
		case *irIf:
			finalizeExpr(s.cond)
			finalizeSlots(s.then)
			finalizeSlots(s.els)
		case *irFor:
			finalizeExpr(s.from)
			finalizeExpr(s.to)
			finalizeSlots(s.body)
		case *irReturn:
			finalizeExpr(s.x)
		}
	}
}

func finalizeExpr(e irExpr) {
	switch x := e.(type) {
	case *irUnary:
		finalizeExpr(x.x)
	case *irBinary:
		finalizeExpr(x.x)
		finalizeExpr(x.y)
	case *irCond:
		finalizeExpr(x.cond)
		finalizeExpr(x.then)
		finalizeExpr(x.els)
	case *irCall:
		for _, a := range x.args {
			finalizeExpr(a)
		}
	case *irField:
		finalizeExpr(x.x)
	case *irIndex:
		finalizeExpr(x.x)
		finalizeExpr(x.i)
	case *irRecord:
		for _, v := range x.vals {
			finalizeExpr(v)
		}
	case *irList:
		for _, el := range x.elems {
			finalizeExpr(el)
		}
	case *irBlock:
		finalizeSlots(x.stmts)
	case *irSteps:
		finalizeExpr(x.x)
	}
}

// --- emission -----------------------------------------------------------

type emitFrame struct {
	retReg     int32
	retPatches []int32 // opFrameRet positions whose C targets the frame end
}

type emitter struct {
	p          *progCode
	nF, nB, nV int32
	fconst     map[uint64]int32 // Float64bits key: -0 and NaN handled exactly
	bconst     map[bool]int32
	vconst     map[string]int32 // Value.Key()
	nameIdx    map[string]int32
	msgIdx     map[string]int32
	deps       map[int]bool
	frames     []*emitFrame
}

// emitProgram lowers a specialized irBlock to a flat program. deps is the
// set of free-ECV indices with an emitted load — constant-condition
// branches are skipped entirely, so ECVs read only on dead paths do not
// count as dependencies (the distribution-collapse pass).
func emitProgram(blk *irBlock, method string) (*progCode, map[int]bool, error) {
	inferTypes(blk)
	em := &emitter{
		p:       &progCode{method: method},
		fconst:  map[uint64]int32{},
		bconst:  map[bool]int32{},
		vconst:  map[string]int32{},
		nameIdx: map[string]int32{},
		msgIdx:  map[string]int32{},
		deps:    map[int]bool{},
	}
	res, _, err := em.emitExpr(blk)
	if err != nil {
		return nil, nil, err
	}
	em.emit(opEnd, res, 0, 0)
	p := em.p
	p.initF = make([]float64, em.nF)
	for _, c := range p.constsF {
		p.initF[c.reg] = c.v
	}
	p.initB = make([]bool, em.nB)
	for _, c := range p.constsB {
		p.initB[c.reg] = c.v
	}
	p.initV = make([]core.Value, em.nV)
	for _, c := range p.constsV {
		p.initV[c.reg] = c.v
	}
	return p, em.deps, nil
}

func (em *emitter) emit(op uint8, a, b, c int32) int32 {
	em.p.code = append(em.p.code, Instr{Op: op, A: a, B: b, C: c})
	return int32(len(em.p.code) - 1)
}

func (em *emitter) here() int32 { return int32(len(em.p.code)) }

func (em *emitter) patchA(pos, target int32) { em.p.code[pos].A = target }

func (em *emitter) allocF() int32 { em.nF++; return em.nF - 1 }
func (em *emitter) allocB() int32 { em.nB++; return em.nB - 1 }
func (em *emitter) allocV() int32 { em.nV++; return em.nV - 1 }

func (em *emitter) alloc(t irType) int32 {
	switch t {
	case tNum:
		return em.allocF()
	case tBool:
		return em.allocB()
	default:
		return em.allocV()
	}
}

func (em *emitter) fConst(n float64) int32 {
	key := math.Float64bits(n)
	if r, ok := em.fconst[key]; ok {
		return r
	}
	r := em.allocF()
	em.fconst[key] = r
	em.p.constsF = append(em.p.constsF, constReg[float64]{reg: r, v: n})
	return r
}

func (em *emitter) bConst(b bool) int32 {
	if r, ok := em.bconst[b]; ok {
		return r
	}
	r := em.allocB()
	em.bconst[b] = r
	em.p.constsB = append(em.p.constsB, constReg[bool]{reg: r, v: b})
	return r
}

func (em *emitter) vConst(v core.Value) int32 {
	key := v.Key()
	if r, ok := em.vconst[key]; ok {
		return r
	}
	r := em.allocV()
	em.vconst[key] = r
	em.p.constsV = append(em.p.constsV, constReg[core.Value]{reg: r, v: v})
	return r
}

func (em *emitter) constReg(v core.Value) (int32, irType) {
	switch v.Kind() {
	case core.KindNum:
		n, _ := v.AsNum()
		return em.fConst(n), tNum
	case core.KindBool:
		b, _ := v.AsBool()
		return em.bConst(b), tBool
	default:
		return em.vConst(v), tVal
	}
}

func (em *emitter) name(s string) int32 {
	if i, ok := em.nameIdx[s]; ok {
		return i
	}
	i := int32(len(em.p.names))
	em.p.names = append(em.p.names, s)
	em.nameIdx[s] = i
	return i
}

func (em *emitter) msg(s string) int32 {
	if i, ok := em.msgIdx[s]; ok {
		return i
	}
	i := int32(len(em.p.msgs))
	em.p.msgs = append(em.p.msgs, s)
	em.msgIdx[s] = i
	return i
}

func (em *emitter) slotReg(s *irSlot) int32 {
	if s.reg < 0 {
		s.reg = em.alloc(s.t)
	}
	return s.reg
}

// coerce bridges an expression's natural bank to the bank its consumer
// needs. Static kind mismatches the interpreter only detects at runtime
// (a bool where a num is needed) become an unconditional opFail at that
// program point: the error fires exactly when the interpreter's would.
func (em *emitter) coerce(reg int32, from, to irType) int32 {
	if from == to {
		return reg
	}
	switch to {
	case tVal:
		r := em.allocV()
		if from == tNum {
			em.emit(opBoxF, r, reg, 0)
		} else {
			em.emit(opBoxB, r, reg, 0)
		}
		return r
	case tNum:
		if from == tVal {
			r := em.allocF()
			em.emit(opNumV, r, reg, 0)
			return r
		}
		em.emit(opFail, em.msg("operand is bool, want num"), 0, 0)
		return em.allocF()
	default: // tBool
		if from == tVal {
			r := em.allocB()
			em.emit(opBoolV, r, reg, 0)
			return r
		}
		em.emit(opFail, em.msg("condition is num, want bool"), 0, 0)
		return em.allocB()
	}
}

func movOp(t irType) uint8 {
	switch t {
	case tNum:
		return opMovF
	case tBool:
		return opMovB
	default:
		return opMovV
	}
}

var builtin1Op = map[string]uint8{
	"abs": opAbsF, "ceil": opCeilF, "floor": opFloorF, "sqrt": opSqrtF, "log2": opLog2F,
}

var builtin2Op = map[string]uint8{
	"min": opMinF, "max": opMaxF, "pow": opPowF,
}

func (em *emitter) emitExpr(e irExpr) (int32, irType, error) {
	switch x := e.(type) {
	case irConst:
		r, t := em.constReg(x.v)
		return r, t, nil
	case irVar:
		return em.slotReg(x.slot), x.slot.t, nil
	case irFree:
		em.deps[x.idx] = true
		switch x.t {
		case tNum:
			r := em.allocF()
			em.emit(opLoadF, r, int32(x.idx), 0)
			return r, tNum, nil
		case tBool:
			r := em.allocB()
			em.emit(opLoadB, r, int32(x.idx), 0)
			return r, tBool, nil
		default:
			r := em.allocV()
			em.emit(opLoadV, r, int32(x.idx), 0)
			return r, tVal, nil
		}
	case *irUnary:
		rx, tx, err := em.emitExpr(x.x)
		if err != nil {
			return 0, 0, err
		}
		if x.op == eil.TokBang {
			b := em.coerce(rx, tx, tBool)
			r := em.allocB()
			em.emit(opNotB, r, b, 0)
			return r, tBool, nil
		}
		f := em.coerce(rx, tx, tNum)
		r := em.allocF()
		em.emit(opNegF, r, f, 0)
		return r, tNum, nil
	case *irBinary:
		rx, tx, err := em.emitExpr(x.x)
		if err != nil {
			return 0, 0, err
		}
		ry, ty, err := em.emitExpr(x.y)
		if err != nil {
			return 0, 0, err
		}
		// Eq/Neq compare any kinds (Value.Equal); everything else needs
		// nums. Coercions come after both operands are evaluated, matching
		// the interpreter's evaluate-then-typecheck order.
		switch x.op {
		case eil.TokEq, eil.TokNeq:
			op := opEqV
			if tx == tNum && ty == tNum {
				op = opEqF
			} else if tx == tBool && ty == tBool {
				op = opEqB
			}
			if op == opEqV {
				rx = em.coerce(rx, tx, tVal)
				ry = em.coerce(ry, ty, tVal)
			}
			if x.op == eil.TokNeq {
				op++ // each Ne* opcode directly follows its Eq*
			}
			r := em.allocB()
			em.emit(op, r, rx, ry)
			return r, tBool, nil
		}
		fx := em.coerce(rx, tx, tNum)
		fy := em.coerce(ry, ty, tNum)
		var op uint8
		rt := tNum
		switch x.op {
		case eil.TokPlus:
			op = opAddF
		case eil.TokMinus:
			op = opSubF
		case eil.TokStar:
			op = opMulF
		case eil.TokSlash:
			op = opDivF
		case eil.TokPercent:
			op = opModF
		case eil.TokLt:
			op, rt = opLtF, tBool
		case eil.TokLe:
			op, rt = opLeF, tBool
		case eil.TokGt:
			op, rt = opGtF, tBool
		case eil.TokGe:
			op, rt = opGeF, tBool
		default:
			return 0, 0, decline("unknown binary operator %v", x.op)
		}
		r := em.alloc(rt)
		em.emit(op, r, fx, fy)
		return r, rt, nil
	case *irCond:
		var nc bool
		rt := typeOfWalk(x, &nc)
		if rt == tUnknown {
			rt = tVal
		}
		res := em.alloc(rt)
		rc, tc, err := em.emitExpr(x.cond)
		if err != nil {
			return 0, 0, err
		}
		cb := em.coerce(rc, tc, tBool)
		j1 := em.emit(opJmpIfNot, 0, cb, 0)
		rthen, tt, err := em.emitExpr(x.then)
		if err != nil {
			return 0, 0, err
		}
		em.emit(movOp(rt), res, em.coerce(rthen, tt, rt), 0)
		j2 := em.emit(opJmp, 0, 0, 0)
		em.patchA(j1, em.here())
		rels, te, err := em.emitExpr(x.els)
		if err != nil {
			return 0, 0, err
		}
		em.emit(movOp(rt), res, em.coerce(rels, te, rt), 0)
		em.patchA(j2, em.here())
		return res, rt, nil
	case *irCall:
		if x.name == "len" {
			rx, tx, err := em.emitExpr(x.args[0])
			if err != nil {
				return 0, 0, err
			}
			r := em.allocF()
			em.emit(opLenV, r, em.coerce(rx, tx, tVal), 0)
			return r, tNum, nil
		}
		if op, ok := builtin1Op[x.name]; ok {
			rx, tx, err := em.emitExpr(x.args[0])
			if err != nil {
				return 0, 0, err
			}
			r := em.allocF()
			em.emit(op, r, em.coerce(rx, tx, tNum), 0)
			return r, tNum, nil
		}
		if op, ok := builtin2Op[x.name]; ok {
			ra, ta, err := em.emitExpr(x.args[0])
			if err != nil {
				return 0, 0, err
			}
			rb, tb, err := em.emitExpr(x.args[1])
			if err != nil {
				return 0, 0, err
			}
			fa := em.coerce(ra, ta, tNum)
			fb := em.coerce(rb, tb, tNum)
			r := em.allocF()
			em.emit(op, r, fa, fb)
			return r, tNum, nil
		}
		return 0, 0, decline("builtin %q not supported by the emitter", x.name)
	case *irField:
		rx, tx, err := em.emitExpr(x.x)
		if err != nil {
			return 0, 0, err
		}
		r := em.allocV()
		em.emit(opFieldV, r, em.coerce(rx, tx, tVal), em.name(x.name))
		return r, tVal, nil
	case *irIndex:
		rx, tx, err := em.emitExpr(x.x)
		if err != nil {
			return 0, 0, err
		}
		ri, ti, err := em.emitExpr(x.i)
		if err != nil {
			return 0, 0, err
		}
		vx := em.coerce(rx, tx, tVal)
		fi := em.coerce(ri, ti, tNum)
		r := em.allocV()
		em.emit(opIndexV, r, vx, fi)
		return r, tVal, nil
	case *irRecord:
		start := int32(len(em.p.aux))
		regs := make([]int32, len(x.vals))
		for i, v := range x.vals {
			rv, tv, err := em.emitExpr(v)
			if err != nil {
				return 0, 0, err
			}
			regs[i] = em.coerce(rv, tv, tVal)
		}
		for i := range x.vals {
			em.p.aux = append(em.p.aux, em.name(x.names[i]), regs[i])
		}
		r := em.allocV()
		em.emit(opRecordV, r, start, int32(len(x.vals)))
		return r, tVal, nil
	case *irList:
		start := int32(len(em.p.aux))
		regs := make([]int32, len(x.elems))
		for i, el := range x.elems {
			rv, tv, err := em.emitExpr(el)
			if err != nil {
				return 0, 0, err
			}
			regs[i] = em.coerce(rv, tv, tVal)
		}
		em.p.aux = append(em.p.aux, regs...)
		r := em.allocV()
		em.emit(opListV, r, start, int32(len(x.elems)))
		return r, tVal, nil
	case *irBlock:
		res := em.allocF()
		fr := &emitFrame{retReg: res}
		em.frames = append(em.frames, fr)
		if err := em.emitStmts(x.stmts); err != nil {
			return 0, 0, err
		}
		// The checker guarantees every path returns; keep a guard that
		// mirrors the interpreter's "no return executed" failure.
		em.emit(opFail, em.msg("no return executed"), 0, 0)
		end := em.here()
		for _, pos := range fr.retPatches {
			em.p.code[pos].C = end
		}
		em.frames = em.frames[:len(em.frames)-1]
		return res, tNum, nil
	case *irSteps:
		return em.emitExpr(x.x)
	default:
		return 0, 0, decline("expression %T escaped specialization", e)
	}
}

func (em *emitter) emitStmts(stmts []irStmt) error {
	for _, st := range stmts {
		switch s := st.(type) {
		case *irLet:
			if _, ok := constOf(s.init); ok && !s.slot.mutated {
				continue // constant-propagated: every read already folded
			}
			r, t, err := em.emitExpr(s.init)
			if err != nil {
				return err
			}
			em.emit(movOp(s.slot.t), em.slotReg(s.slot), em.coerce(r, t, s.slot.t), 0)
		case *irAssign:
			r, t, err := em.emitExpr(s.x)
			if err != nil {
				return err
			}
			em.emit(movOp(s.slot.t), em.slotReg(s.slot), em.coerce(r, t, s.slot.t), 0)
		case *irIf:
			if b, ok := constBool(s.cond); ok {
				// Dead-branch elimination: the interpreter would evaluate
				// the constant condition and never enter the other arm, so
				// its code (and its ECV reads) is simply not emitted.
				taken := s.then
				if !b {
					taken = s.els
				}
				if err := em.emitStmts(taken); err != nil {
					return err
				}
				continue
			}
			rc, tc, err := em.emitExpr(s.cond)
			if err != nil {
				return err
			}
			cb := em.coerce(rc, tc, tBool)
			j1 := em.emit(opJmpIfNot, 0, cb, 0)
			if err := em.emitStmts(s.then); err != nil {
				return err
			}
			j2 := em.emit(opJmp, 0, 0, 0)
			em.patchA(j1, em.here())
			if err := em.emitStmts(s.els); err != nil {
				return err
			}
			em.patchA(j2, em.here())
		case *irFor:
			rf, tf, err := em.emitExpr(s.from)
			if err != nil {
				return err
			}
			rt, tt, err := em.emitExpr(s.to)
			if err != nil {
				return err
			}
			ff := em.coerce(rf, tf, tNum)
			ft := em.coerce(rt, tt, tNum)
			iv := em.slotReg(s.slot)
			em.emit(opCeilRaw, iv, ff, 0)
			top := em.here()
			cmp := em.allocB()
			em.emit(opLtF, cmp, iv, ft)
			jend := em.emit(opJmpIfNot, 0, cmp, 0)
			if err := em.emitStmts(s.body); err != nil {
				return err
			}
			em.emit(opAddF, iv, iv, em.fConst(1))
			em.emit(opJmp, top, 0, 0)
			em.patchA(jend, em.here())
		case *irReturn:
			r, t, err := em.emitExpr(s.x)
			if err != nil {
				return err
			}
			var src int32
			switch t {
			case tNum:
				src = r
			case tVal:
				src = em.allocF()
				em.emit(opNumV, src, r, 0)
			default:
				em.emit(opFail, em.msg("returned bool, want num (joules)"), 0, 0)
				src = em.allocF()
			}
			fr := em.frames[len(em.frames)-1]
			pos := em.emit(opFrameRet, fr.retReg, src, 0)
			fr.retPatches = append(fr.retPatches, pos)
		default:
			return decline("unknown statement %T in emit", st)
		}
	}
	return nil
}
