package opt

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
)

// init wires the compiler into core: importing this package (even blank)
// routes every Interface.Eval through compiled programs, with transparent
// interpreter fallback for anything the compiler declines.
func init() {
	core.RegisterCompiler(CompileMethod)
}

// maxSpecCache bounds the per-program specialization cache. Beyond it,
// specializations still compile — they are just not retained, so a daemon
// sweeping unbounded argument spaces cannot grow memory without limit.
const maxSpecCache = 1024

// Program is a compiled method: the folded IR after lowering and
// inlining, specialized on demand for each Eval's arguments and pinned
// ECVs. It implements core.CompiledProgram and is safe for concurrent use
// (the IR is immutable after compilation; specializations clone the slot
// metadata they mutate).
type Program struct {
	method  string
	nParams int
	ir      *irBlock

	specs  sync.Map // cache key -> *specEntry
	nSpecs atomic.Int64
}

type specEntry struct {
	spec core.SpecializedProgram // nil records a declined specialization
}

// CompileMethod compiles one method of the tree rooted at root. It is the
// core.MethodCompiler this package registers. A (nil, nil) return means
// the method is outside the compiled subset (Go-native body, unresolvable
// call graph, recursion, excessive depth) and evaluation stays on the
// interpreter.
func CompileMethod(root *core.Interface, method string) (core.CompiledProgram, error) {
	m := root.Method(method)
	if m == nil {
		return nil, nil
	}
	fn, ok := m.Source.(*eil.FuncDecl)
	if !ok || fn == nil {
		return nil, nil
	}
	lw := &lowerer{}
	args := make([]irExpr, len(fn.Params))
	for i := range args {
		args[i] = irArg{i: i}
	}
	blk, err := lw.lowerMethod(root, "", fn, args, 0)
	if err != nil {
		if _, declined := err.(*declineError); declined {
			return nil, nil
		}
		return nil, err
	}
	// Compile-time constant folding: literal arithmetic collapses here;
	// argument- and ECV-dependent folding waits for specialization.
	fc := &foldCtx{consts: map[*irSlot]irConst{}}
	folded := fc.foldStmts(blk.stmts)
	if fc.err != nil {
		return nil, nil
	}
	return &Program{
		method:  method,
		nParams: len(fn.Params),
		ir:      &irBlock{stmts: folded, w0: blk.w0},
	}, nil
}

// Specialize partially evaluates the program for concrete arguments and
// pinned ECVs, emits flat code, and caches the result keyed by the exact
// (args, pinned, free) shape. ok=false declines to the interpreter.
func (p *Program) Specialize(args []core.Value, pinned map[string]core.Value, free []core.QualifiedECV) (core.SpecializedProgram, bool) {
	// The interpreter rejects argument-count mismatches at runtime (except
	// for zero-parameter methods, which accept anything); decline and let
	// it produce that error.
	if p.nParams != 0 && len(args) != p.nParams {
		return nil, false
	}
	key := specKey(args, pinned, free)
	if e, ok := p.specs.Load(key); ok {
		ent := e.(*specEntry)
		return ent.spec, ent.spec != nil
	}
	spec := p.specialize(args, pinned, free)
	if p.nSpecs.Load() < maxSpecCache {
		if _, loaded := p.specs.LoadOrStore(key, &specEntry{spec: spec}); !loaded {
			p.nSpecs.Add(1)
		}
	}
	return spec, spec != nil
}

func (p *Program) specialize(args []core.Value, pinned map[string]core.Value, free []core.QualifiedECV) core.SpecializedProgram {
	freeIdx := make(map[string]int, len(free))
	for i, q := range free {
		freeIdx[q.QualifiedName()] = i
	}
	fc := &foldCtx{
		subst:   true,
		args:    args,
		pinned:  pinned,
		freeIdx: freeIdx,
		consts:  map[*irSlot]irConst{},
	}
	blk := &irBlock{stmts: cloneStmts(p.ir.stmts, map[*irSlot]*irSlot{}), w0: p.ir.w0}
	blk = &irBlock{stmts: fc.foldStmts(blk.stmts), w0: blk.w0}
	if fc.err != nil {
		return nil
	}
	// Fuel check: the residual program's interpreter step bound must stay
	// under the budget, or the interpreter could return ErrFuelExhausted
	// where the compiled program would happily keep running.
	bound, err := boundStmts(blk.stmts)
	if err != nil || satAdd(blk.w0, bound) >= int64(eil.DefaultFuel) {
		return nil
	}
	code, deps, err := emitProgram(blk, p.method)
	if err != nil {
		return nil
	}
	return newSpecialized(code, deps, len(free))
}

// cloneStmts deep-copies the IR so concurrent specializations (and the
// emit pass, which mutates slot types and registers) never share slots.
func cloneStmts(stmts []irStmt, slots map[*irSlot]*irSlot) []irStmt {
	out := make([]irStmt, len(stmts))
	for i, st := range stmts {
		switch s := st.(type) {
		case *irLet:
			out[i] = &irLet{slot: cloneSlot(s.slot, slots), init: cloneExpr(s.init, slots), noStep: s.noStep}
		case *irAssign:
			out[i] = &irAssign{slot: cloneSlot(s.slot, slots), x: cloneExpr(s.x, slots)}
		case *irIf:
			out[i] = &irIf{cond: cloneExpr(s.cond, slots), then: cloneStmts(s.then, slots), els: cloneStmts(s.els, slots)}
		case *irFor:
			out[i] = &irFor{slot: cloneSlot(s.slot, slots), from: cloneExpr(s.from, slots), to: cloneExpr(s.to, slots), body: cloneStmts(s.body, slots)}
		case *irReturn:
			out[i] = &irReturn{x: cloneExpr(s.x, slots)}
		default:
			out[i] = st
		}
	}
	return out
}

func cloneSlot(s *irSlot, slots map[*irSlot]*irSlot) *irSlot {
	if c, ok := slots[s]; ok {
		return c
	}
	c := &irSlot{name: s.name, id: s.id, mutated: s.mutated, t: s.t, reg: -1}
	slots[s] = c
	return c
}

func cloneExpr(e irExpr, slots map[*irSlot]*irSlot) irExpr {
	switch x := e.(type) {
	case irConst, irArg, irECV, irFree:
		return x
	case irVar:
		return irVar{slot: cloneSlot(x.slot, slots)}
	case *irUnary:
		return &irUnary{op: x.op, x: cloneExpr(x.x, slots)}
	case *irBinary:
		return &irBinary{op: x.op, x: cloneExpr(x.x, slots), y: cloneExpr(x.y, slots)}
	case *irCond:
		return &irCond{cond: cloneExpr(x.cond, slots), then: cloneExpr(x.then, slots), els: cloneExpr(x.els, slots)}
	case *irCall:
		args := make([]irExpr, len(x.args))
		for i, a := range x.args {
			args[i] = cloneExpr(a, slots)
		}
		return &irCall{name: x.name, args: args}
	case *irField:
		return &irField{x: cloneExpr(x.x, slots), name: x.name}
	case *irIndex:
		return &irIndex{x: cloneExpr(x.x, slots), i: cloneExpr(x.i, slots)}
	case *irRecord:
		vals := make([]irExpr, len(x.vals))
		for i, v := range x.vals {
			vals[i] = cloneExpr(v, slots)
		}
		return &irRecord{names: x.names, vals: vals}
	case *irList:
		elems := make([]irExpr, len(x.elems))
		for i, el := range x.elems {
			elems[i] = cloneExpr(el, slots)
		}
		return &irList{elems: elems}
	case *irBlock:
		return &irBlock{stmts: cloneStmts(x.stmts, slots), w0: x.w0}
	case *irSteps:
		return &irSteps{x: cloneExpr(x.x, slots), extra: x.extra}
	default:
		return e
	}
}

// specKey builds the deterministic cache key for one specialization
// shape: argument values, pinned assignments (sorted), and the free-ECV
// order the emitted loads index into.
func specKey(args []core.Value, pinned map[string]core.Value, free []core.QualifiedECV) string {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(a.Key())
		b.WriteByte(0)
	}
	b.WriteByte(1)
	if len(pinned) > 0 {
		keys := make([]string, 0, len(pinned))
		for k := range pinned {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte(2)
			b.WriteString(pinned[k].Key())
			b.WriteByte(0)
		}
	}
	b.WriteByte(1)
	for _, q := range free {
		b.WriteString(q.QualifiedName())
		b.WriteByte(0)
	}
	return b.String()
}
