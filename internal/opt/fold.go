package opt

import (
	"math"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
)

// foldCtx parameterizes the combined substitution + constant-folding pass.
// At compile time (subst == false) only literal constants fold; at
// specialization time arguments and pinned ECVs substitute to constants
// first, which is what makes partial evaluation collapse whole method
// bodies.
//
// Folding delegates every actual computation to the interpreter's own
// evaluators (eil.ApplyBinary, eil.CallBuiltin, core.Value accessors), so
// folded results are bit-identical to runtime ones. A fold that errors
// (e.g. a constant division by zero) leaves the node in place: the
// emitted program then produces the same runtime error the interpreter
// would — dead-branch elimination may legitimately remove it first.
type foldCtx struct {
	subst   bool
	args    []core.Value
	pinned  map[string]core.Value
	freeIdx map[string]int
	consts  map[*irSlot]irConst // immutable slots with constant inits
	err     error               // sticky decline (unknown free ECV)
}

func (f *foldCtx) foldStmts(stmts []irStmt) []irStmt {
	out := make([]irStmt, len(stmts))
	for i, st := range stmts {
		switch s := st.(type) {
		case *irLet:
			init := f.foldExpr(s.init)
			if v, ok := constOf(init); ok && !s.slot.mutated {
				f.consts[s.slot] = irConst{v: v, w: 1}
			}
			out[i] = &irLet{slot: s.slot, init: init, noStep: s.noStep}
		case *irAssign:
			out[i] = &irAssign{slot: s.slot, x: f.foldExpr(s.x)}
		case *irIf:
			out[i] = &irIf{cond: f.foldExpr(s.cond), then: f.foldStmts(s.then), els: f.foldStmts(s.els)}
		case *irFor:
			out[i] = &irFor{slot: s.slot, from: f.foldExpr(s.from), to: f.foldExpr(s.to), body: f.foldStmts(s.body)}
		case *irReturn:
			out[i] = &irReturn{x: f.foldExpr(s.x)}
		default:
			out[i] = st
		}
	}
	return out
}

func (f *foldCtx) foldExpr(e irExpr) irExpr {
	switch x := e.(type) {
	case irConst:
		return x
	case irArg:
		if f.subst {
			// An argument read is an Ident evaluation: one step.
			return irConst{v: f.args[x.i], w: 1}
		}
		return x
	case irVar:
		if c, ok := f.consts[x.slot]; ok {
			return c
		}
		return x
	case irECV:
		if !f.subst {
			return x
		}
		if v, ok := f.pinned[x.qn]; ok {
			return irConst{v: v, w: 1}
		}
		if idx, ok := f.freeIdx[x.qn]; ok {
			return irFree{idx: idx, qn: x.qn, t: x.t}
		}
		// Not pinned and not free: the interpreter would fail "ECV not
		// assigned"; decline and let it.
		if f.err == nil {
			f.err = decline("ECV %q not assigned", x.qn)
		}
		return x
	case irFree:
		return x
	case *irUnary:
		ix := f.foldExpr(x.x)
		if v, ok := constOf(ix); ok {
			switch x.op {
			case eil.TokMinus:
				if n, ok := v.AsNum(); ok {
					return irConst{v: core.Num(-n), w: 1 + weight(ix)}
				}
			case eil.TokBang:
				if b, ok := v.AsBool(); ok {
					return irConst{v: core.Bool(!b), w: 1 + weight(ix)}
				}
			}
			// Type error at runtime: keep the node.
		}
		return &irUnary{op: x.op, x: ix}
	case *irBinary:
		ix := f.foldExpr(x.x)
		iy := f.foldExpr(x.y)
		vx, okx := constOf(ix)
		vy, oky := constOf(iy)
		if okx && oky {
			if v, err := eil.ApplyBinary(eil.Pos{}, x.op, vx, vy); err == nil {
				return irConst{v: v, w: 1 + weight(ix) + weight(iy)}
			}
			// Runtime error (div/mod by zero, type mismatch): keep.
			return &irBinary{op: x.op, x: ix, y: iy}
		}
		// IEEE-exact simplifications only: x*1, 1*x, x/1, x-0 return x
		// bit-for-bit for every float64 input (including -0, NaN, ±Inf).
		// x+0 and 0+x are NOT exact (-0.0 + 0.0 == +0.0) and stay put.
		if n, isNum := numConst(iy); isNum {
			if (x.op == eil.TokStar && n == 1) || (x.op == eil.TokSlash && n == 1) ||
				(x.op == eil.TokMinus && n == 0 && !math.Signbit(n)) {
				return simplified(ix, 1+weight(iy))
			}
		}
		if n, isNum := numConst(ix); isNum && x.op == eil.TokStar && n == 1 {
			return simplified(iy, 1+weight(ix))
		}
		return &irBinary{op: x.op, x: ix, y: iy}
	case *irCond:
		cond := f.foldExpr(x.cond)
		then := f.foldExpr(x.then)
		els := f.foldExpr(x.els)
		if b, ok := constBool(cond); ok {
			// The interpreter evaluates the condition and then only the
			// taken arm — eliminating the dead arm is behavior-preserving,
			// and the condition's steps ride along on the survivor.
			taken := then
			if !b {
				taken = els
			}
			return simplified(taken, 1+weight(cond))
		}
		return &irCond{cond: cond, then: then, els: els}
	case *irCall:
		args := make([]irExpr, len(x.args))
		vals := make([]core.Value, len(x.args))
		allConst := true
		var w int64 = 1
		for i, a := range x.args {
			args[i] = f.foldExpr(a)
			w += weight(args[i])
			if v, ok := constOf(args[i]); ok {
				vals[i] = v
			} else {
				allConst = false
			}
		}
		if allConst {
			if v, err := eil.CallBuiltin(x.name, vals); err == nil {
				return irConst{v: v, w: w}
			}
		}
		return &irCall{name: x.name, args: args}
	case *irField:
		ix := f.foldExpr(x.x)
		if v, ok := constOf(ix); ok {
			if fv, ok := v.Field(x.name); ok {
				return irConst{v: fv, w: 1 + weight(ix)}
			}
		}
		return &irField{x: ix, name: x.name}
	case *irIndex:
		ix := f.foldExpr(x.x)
		ii := f.foldExpr(x.i)
		if v, ok := constOf(ix); ok {
			if iv, ok := constOf(ii); ok {
				if n, isNum := iv.AsNum(); isNum {
					if el, ok := v.Index(int(n)); ok {
						return irConst{v: el, w: 1 + weight(ix) + weight(ii)}
					}
				}
			}
		}
		return &irIndex{x: ix, i: ii}
	case *irRecord:
		vals := make([]irExpr, len(x.vals))
		fields := make(map[string]core.Value, len(x.vals))
		allConst := true
		var w int64 = 1
		for i, v := range x.vals {
			vals[i] = f.foldExpr(v)
			w += weight(vals[i])
			if c, ok := constOf(vals[i]); ok {
				fields[x.names[i]] = c
			} else {
				allConst = false
			}
		}
		if allConst {
			return irConst{v: core.Record(fields), w: w}
		}
		return &irRecord{names: x.names, vals: vals}
	case *irList:
		elems := make([]irExpr, len(x.elems))
		vals := make([]core.Value, len(x.elems))
		allConst := true
		var w int64 = 1
		for i, el := range x.elems {
			elems[i] = f.foldExpr(el)
			w += weight(elems[i])
			if c, ok := constOf(elems[i]); ok {
				vals[i] = c
			} else {
				allConst = false
			}
		}
		if allConst {
			return irConst{v: core.List(vals...), w: w}
		}
		return &irList{elems: elems}
	case *irBlock:
		return &irBlock{stmts: f.foldStmts(x.stmts), w0: x.w0}
	case *irSteps:
		inner := f.foldExpr(x.x)
		return simplified(inner, x.extra)
	default:
		return e
	}
}

// simplified wraps e with extra interpreter steps, merging nested
// wrappers and folding the weight into constants directly.
func simplified(e irExpr, extra int64) irExpr {
	if extra == 0 {
		return e
	}
	switch x := e.(type) {
	case irConst:
		return irConst{v: x.v, w: satAdd(x.w, extra)}
	case *irSteps:
		return &irSteps{x: x.x, extra: satAdd(x.extra, extra)}
	default:
		return &irSteps{x: e, extra: extra}
	}
}

func numConst(e irExpr) (float64, bool) {
	v, ok := constOf(e)
	if !ok {
		return 0, false
	}
	return v.AsNum()
}

// --- fuel bound ---------------------------------------------------------

// stepCap saturates step arithmetic well above eil.DefaultFuel.
const stepCap = int64(1) << 50

func satAdd(a, b int64) int64 {
	s := a + b
	if s > stepCap || s < 0 {
		return stepCap
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > stepCap/b {
		return stepCap
	}
	return a * b
}

// weight is the upper bound on interpreter steps to evaluate e's original
// source form. Constants carry the accumulated weight of what they folded
// from; structural nodes cost one step plus their children.
func weight(e irExpr) int64 {
	switch x := e.(type) {
	case irConst:
		return x.w
	case irArg, irVar, irECV, irFree:
		return 1
	case *irSteps:
		return satAdd(x.extra, weight(x.x))
	case *irUnary:
		return satAdd(1, weight(x.x))
	case *irBinary:
		return satAdd(1, satAdd(weight(x.x), weight(x.y)))
	case *irCond:
		wt, we := weight(x.then), weight(x.els)
		if we > wt {
			wt = we
		}
		return satAdd(1, satAdd(weight(x.cond), wt))
	case *irCall:
		w := int64(1)
		for _, a := range x.args {
			w = satAdd(w, weight(a))
		}
		return w
	case *irField:
		return satAdd(1, weight(x.x))
	case *irIndex:
		return satAdd(1, satAdd(weight(x.x), weight(x.i)))
	case *irRecord:
		w := int64(1)
		for _, v := range x.vals {
			w = satAdd(w, weight(v))
		}
		return w
	case *irList:
		w := int64(1)
		for _, el := range x.elems {
			w = satAdd(w, weight(el))
		}
		return w
	case *irBlock:
		w, err := boundStmts(x.stmts)
		if err != nil {
			return stepCap
		}
		return satAdd(x.w0, w)
	default:
		return stepCap
	}
}

// boundStmts computes the statement list's step bound, declining on loops
// whose bounds did not specialize to constants — exactly the methods that
// could exhaust the interpreter's fuel.
func boundStmts(stmts []irStmt) (int64, error) {
	var total int64
	for _, st := range stmts {
		step := int64(1)
		switch s := st.(type) {
		case *irLet:
			if s.noStep {
				step = 0
			}
			total = satAdd(total, satAdd(step, weight(s.init)))
		case *irAssign:
			total = satAdd(total, satAdd(1, weight(s.x)))
		case *irReturn:
			total = satAdd(total, satAdd(1, weight(s.x)))
		case *irIf:
			wThen, err := boundStmts(s.then)
			if err != nil {
				return 0, err
			}
			wEls, err := boundStmts(s.els)
			if err != nil {
				return 0, err
			}
			w := wThen
			if b, ok := constBool(s.cond); ok {
				// Constant condition: the interpreter always takes one arm.
				if !b {
					w = wEls
				}
			} else if wEls > w {
				w = wEls
			}
			total = satAdd(total, satAdd(1, satAdd(weight(s.cond), w)))
		case *irFor:
			trips, err := loopTrips(s)
			if err != nil {
				return 0, err
			}
			body, err := boundStmts(s.body)
			if err != nil {
				return 0, err
			}
			w := satAdd(weight(s.from), weight(s.to))
			w = satAdd(w, satMul(trips, satAdd(1, body)))
			total = satAdd(total, satAdd(1, w))
		default:
			return 0, decline("unknown statement in bound")
		}
		if total >= stepCap {
			return stepCap, nil
		}
	}
	return total, nil
}

// loopTrips statically counts iterations of a specialized loop: both
// bounds must have folded to constant nums. The interpreter runs
// i := ceil(from); i < to; i++ — non-finite or out-of-float-integer-range
// starts decline (the float increment could stall and exhaust fuel).
func loopTrips(s *irFor) (int64, error) {
	fromV, ok1 := constOf(s.from)
	toV, ok2 := constOf(s.to)
	if !ok1 || !ok2 {
		return 0, decline("loop bound not a specialization-time constant")
	}
	from, okN1 := fromV.AsNum()
	to, okN2 := toV.AsNum()
	if !okN1 || !okN2 {
		// The interpreter errors "for bounds must be num" at runtime.
		return 0, decline("loop bound is not a num")
	}
	i0 := math.Ceil(from)
	if !(i0 < to) { // handles NaN and from >= to: zero iterations
		return 0, nil
	}
	if math.IsInf(i0, 0) || math.Abs(i0) >= 1<<53 || math.IsInf(to, 0) {
		return 0, decline("loop bounds outside exact float integer range")
	}
	n := to - i0
	if n >= float64(eil.DefaultFuel) {
		return 0, decline("loop runs %g iterations, over the fuel budget", n)
	}
	return int64(math.Ceil(n)), nil
}
