package opt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
	"energyclarity/internal/energy"
	"energyclarity/internal/nn"
)

func compileEIL(t *testing.T, src string) *core.Interface {
	t.Helper()
	iface, err := eil.CompileOne(src, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return iface
}

// distBitsEqual demands exact (bit-level) equality of support and
// probabilities — the compiled path must replicate the interpreter's
// float operations, not approximate them.
func distBitsEqual(a, b energy.Dist) bool {
	ax, bx := a.Support(), b.Support()
	ap, bp := a.Probs(), b.Probs()
	if len(ax) != len(bx) {
		return false
	}
	for i := range ax {
		if math.Float64bits(ax[i]) != math.Float64bits(bx[i]) ||
			math.Float64bits(ap[i]) != math.Float64bits(bp[i]) {
			return false
		}
	}
	return true
}

// fixedAssignment pins every transitive ECV to one of its support values.
func fixedAssignment(iface *core.Interface, rng *rand.Rand) map[string]core.Value {
	assign := map[string]core.Value{}
	for _, q := range iface.TransitiveECVs() {
		d := q.ECV.Dist
		assign[q.QualifiedName()] = d[rng.Intn(len(d))].V
	}
	return assign
}

// allModeOpts returns one EvalOptions per mode, with ModeFixed pinning
// every ECV deterministically.
func allModeOpts(iface *core.Interface, seed int64) []core.EvalOptions {
	rng := rand.New(rand.NewSource(seed))
	return []core.EvalOptions{
		core.Expected(),
		core.WorstCase(),
		core.BestCase(),
		core.MonteCarlo(517, seed),
		core.FixedAssignment(fixedAssignment(iface, rng)),
	}
}

// checkBitIdentity evaluates method under opts through the compiled path
// and the forced-interpreter path and requires bit-identical results (or
// matching error presence — error text may differ between the two).
func checkBitIdentity(t *testing.T, iface *core.Interface, method string, args []core.Value, opts core.EvalOptions) {
	t.Helper()
	compiled, cerr := iface.Eval(method, args, opts)
	interp := opts
	interp.Interpret = true
	want, ierr := iface.Eval(method, args, interp)
	if (cerr != nil) != (ierr != nil) {
		t.Fatalf("mode %v: compiled err = %v, interpreted err = %v", opts.Mode, cerr, ierr)
	}
	if cerr != nil {
		return
	}
	if !distBitsEqual(compiled, want) {
		t.Fatalf("mode %v: compiled %v != interpreted %v", opts.Mode, compiled, want)
	}
}

const fig1Src = `
interface accel_driver {
  func conv2d(n) { return 0.004mJ * n }
  func relu(n)   { return 0.001mJ * n }
  func mlp(n)    { return 0.01mJ * n }
}

interface redis_cache {
  ecv local_cache_hit: bernoulli(0.8)
  func lookup(key, response_len) {
    if local_cache_hit {
      return 5mJ * response_len
    } else {
      return 100mJ * response_len
    }
  }
}

interface ml_webservice {
  ecv request_hit: bernoulli(0.3)
  uses cache: redis_cache
  uses accel: accel_driver

  func handle(request) {
    let max_response_len = 1024
    if request_hit {
      return cache.lookup(request.image, max_response_len)
    } else {
      return cnn_forward(request)
    }
  }

  func cnn_forward(image) {
    let n_embedding = 256
    let n_zeros = image.zeros
    return 8 * accel.conv2d(image.size - n_zeros)
         + 8 * accel.relu(n_embedding)
         + 16 * accel.mlp(n_embedding)
  }
}
`

func fig1Request() core.Value {
	return core.Record(map[string]core.Value{
		"size": core.Num(1e6), "zeros": core.Num(2e5), "image": core.Num(1),
	})
}

func TestFig1BitIdentityAllModes(t *testing.T) {
	iface := compileEIL(t, fig1Src)
	args := []core.Value{fig1Request()}
	for _, opts := range allModeOpts(iface, 1) {
		checkBitIdentity(t, iface, "handle", args, opts)
	}
}

func TestBitIdenticalAcrossParallelism(t *testing.T) {
	iface := compileEIL(t, fig1Src)
	args := []core.Value{fig1Request()}
	for _, opts := range allModeOpts(iface, 2) {
		var ref energy.Dist
		for i, par := range []int{1, 2, 8} {
			o := opts
			o.Parallelism = par
			d, err := iface.Eval("handle", args, o)
			if err != nil {
				t.Fatalf("mode %v parallelism %d: %v", o.Mode, par, err)
			}
			if i == 0 {
				ref = d
			} else if !distBitsEqual(d, ref) {
				t.Fatalf("mode %v: parallelism %d diverges: %v vs %v", o.Mode, par, d, ref)
			}
		}
	}
}

func TestProgramStatsCount(t *testing.T) {
	iface := compileEIL(t, fig1Src)
	before := core.ReadProgramStats()
	if _, err := iface.Eval("handle", []core.Value{fig1Request()}, core.Expected()); err != nil {
		t.Fatal(err)
	}
	after := core.ReadProgramStats()
	if after.CompiledPrograms == before.CompiledPrograms {
		t.Fatal("expected a compiled program to be counted")
	}
	if after.CompiledEvals == before.CompiledEvals {
		t.Fatal("expected a compiled eval to be counted")
	}
}

// A method whose callee is Go-native cannot be inlined; evaluation must
// fall back to the interpreter, stay correct, and count the fallback.
func TestGoNativeBindingFallsBack(t *testing.T) {
	hw := core.New("hw").MustMethod(core.Method{
		Name: "op", Params: []string{"n"},
		Body: func(c *core.Call) energy.Joules { return energy.Joules(2 * c.Num(0)) },
	})
	src := `interface top {
	  uses hw: hw
	  func f(n) { return hw.op(n) + 1 }
	}`
	m, err := eil.Compile(src, map[string]*core.Interface{"hw": hw})
	if err != nil {
		t.Fatal(err)
	}
	top := m["top"]
	before := core.ReadProgramStats()
	d, err := top.Eval("f", []core.Value{core.Num(10)}, core.Expected())
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 21 {
		t.Fatalf("got %v, want 21", d.Mean())
	}
	after := core.ReadProgramStats()
	if after.CompileFallbacks == before.CompileFallbacks {
		t.Fatal("expected a compile fallback to be counted")
	}
}

// A loop bounded by a free ECV has no static trip count under
// enumeration; the specialization declines and the interpreter takes
// over — results must still match exactly.
func TestECVBoundedLoopFallsBack(t *testing.T) {
	src := `interface t {
	  ecv n: choice { 3: 0.5, 7: 0.5 }
	  func f() {
	    let total = 0
	    for i in 0 .. n {
	      total = total + i + 1
	    }
	    return total
	  }
	}`
	iface := compileEIL(t, src)
	for _, opts := range allModeOpts(iface, 3) {
		checkBitIdentity(t, iface, "f", nil, opts)
	}
	// Pinned (ModeFixed) the bound is constant, so this one must compile.
	before := core.ReadProgramStats()
	d, err := iface.Eval("f", nil, core.FixedAssignment(map[string]core.Value{"n": core.Num(3)}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 6 {
		t.Fatalf("got %v, want 6", d.Mean())
	}
	if core.ReadProgramStats().CompiledEvals == before.CompiledEvals {
		t.Fatal("pinned-bound loop should evaluate compiled")
	}
}

// Enumeration-free methods (no ECV dependence after specialization) must
// fully collapse: the program reports no deps and every mode agrees.
func TestClosedFormCollapse(t *testing.T) {
	src := `interface t {
	  ecv unused: bernoulli(0.5)
	  func f(n) {
	    let a = 3 * n + 2
	    return a * a - n
	  }
	}`
	iface := compileEIL(t, src)
	prog, err := CompileMethod(iface, "f")
	if err != nil || prog == nil {
		t.Fatalf("CompileMethod: prog=%v err=%v", prog, err)
	}
	spec, ok := prog.Specialize([]core.Value{core.Num(4)}, nil, iface.TransitiveECVs())
	if !ok {
		t.Fatal("specialization declined")
	}
	if deps := spec.Deps(); len(deps) != 0 {
		t.Fatalf("deps = %v, want none", deps)
	}
	for _, opts := range allModeOpts(iface, 4) {
		checkBitIdentity(t, iface, "f", []core.Value{core.Num(4)}, opts)
	}
}

// Rebind produces a new tree whose subtree versions differ; the compiled
// program cache must not serve stale code for it.
func TestRebindInvalidatesPrograms(t *testing.T) {
	iface := compileEIL(t, fig1Src)
	args := []core.Value{fig1Request()}
	d1, err := iface.Eval("handle", args, core.Expected())
	if err != nil {
		t.Fatal(err)
	}

	cheap := compileEIL(t, `interface accel_driver2 {
	  func conv2d(n) { return 0.002mJ * n }
	  func relu(n)   { return 0.001mJ * n }
	  func mlp(n)    { return 0.01mJ * n }
	}`)
	re, err := iface.Rebind("accel", cheap)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := re.Eval("handle", args, core.Expected())
	if err != nil {
		t.Fatal(err)
	}
	if distBitsEqual(d1, d2) {
		t.Fatal("rebind did not change the result: stale compiled program?")
	}
	for _, opts := range allModeOpts(re, 5) {
		checkBitIdentity(t, re, "handle", args, opts)
	}
	// The original tree must be untouched.
	d1b, err := iface.Eval("handle", args, core.Expected())
	if err != nil {
		t.Fatal(err)
	}
	if !distBitsEqual(d1, d1b) {
		t.Fatal("rebind mutated the original tree's compiled results")
	}
}

// Runtime errors (division by zero, non-finite builtin results) must
// surface from the compiled path exactly when the interpreter errors.
func TestRuntimeErrorPresenceAgrees(t *testing.T) {
	cases := []string{
		`interface t {
		  ecv d: choice { 0: 0.5, 2: 0.5 }
		  func f() { return 10 / d }
		}`,
		`interface t {
		  ecv big: choice { 1000: 0.5, 1: 0.5 }
		  func f() { return pow(10, big) + sqrt(0 - big) }
		}`,
		`interface t {
		  func f(x) { return x + 1 }
		}`,
	}
	args := [][]core.Value{nil, nil, {core.Str("not a number")}}
	for i, src := range cases {
		iface := compileEIL(t, src)
		for _, opts := range allModeOpts(iface, int64(10+i)) {
			checkBitIdentity(t, iface, "f", args[i], opts)
		}
	}
}

// randProgram generates a random but well-formed EIL interface: nested
// lets, conditionals on a boolean ECV, a bounded accumulation loop, and
// arithmetic over parameters, prior locals and a numeric ECV.
func randProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("interface r {\n")
	b.WriteString("  ecv flip: bernoulli(0.4)\n")
	b.WriteString("  ecv load: choice { 1: 0.5, 2: 0.25, 4: 0.25 }\n")

	scope := []string{"n", "load"}
	expr := func(depth int) string { return randExpr(rng, scope, depth) }

	b.WriteString("  func f(n) {\n")
	nLets := 1 + rng.Intn(3)
	for i := 0; i < nLets; i++ {
		name := fmt.Sprintf("v%d", i)
		fmt.Fprintf(&b, "    let %s = %s\n", name, expr(2))
		scope = append(scope, name)
	}
	if rng.Intn(2) == 0 {
		tgt := scope[2+rng.Intn(nLets)]
		fmt.Fprintf(&b, "    if flip {\n      %s = %s\n    }\n", tgt, expr(2))
	}
	fmt.Fprintf(&b, "    let acc = 0\n")
	loopScope := append(append([]string(nil), scope...), "i")
	fmt.Fprintf(&b, "    for i in 0 .. %d {\n      acc = acc + %s\n    }\n",
		1+rng.Intn(5), randExpr(rng, loopScope, 2))
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&b, "    if flip && acc > %d {\n      return %s\n    }\n",
			rng.Intn(10), expr(1))
	}
	fmt.Fprintf(&b, "    return acc + %s\n  }\n}\n", expr(2))
	return b.String()
}

func randExpr(rng *rand.Rand, scope []string, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(9))
		case 1:
			return "0.5"
		default:
			return scope[rng.Intn(len(scope))]
		}
	}
	a := randExpr(rng, scope, depth-1)
	c := randExpr(rng, scope, depth-1)
	switch rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, c)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, c)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, c)
	case 3:
		return fmt.Sprintf("min(%s, %s)", a, c)
	case 4:
		return fmt.Sprintf("max(%s, %s)", a, c)
	case 5:
		return fmt.Sprintf("abs(%s)", a)
	default:
		return fmt.Sprintf("(%s / (abs(%s) + 1))", a, c)
	}
}

func TestRandomProgramsBitIdentity(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randProgram(rng)
		iface, err := eil.CompileOne(src, nil)
		if err != nil {
			t.Fatalf("seed %d: generated invalid EIL: %v\n%s", seed, err, src)
		}
		args := []core.Value{core.Num(float64(rng.Intn(20)))}
		for _, opts := range allModeOpts(iface, seed) {
			compiled, cerr := iface.Eval("f", args, opts)
			interp := opts
			interp.Interpret = true
			want, ierr := iface.Eval("f", args, interp)
			if (cerr != nil) != (ierr != nil) {
				t.Fatalf("seed %d mode %v: compiled err %v vs interpreted err %v\n%s",
					seed, opts.Mode, cerr, ierr, src)
			}
			if cerr == nil && !distBitsEqual(compiled, want) {
				t.Fatalf("seed %d mode %v: %v != %v\n%s", seed, opts.Mode, compiled, want, src)
			}
		}
	}
}

func TestRandomFixedAssignments(t *testing.T) {
	iface := compileEIL(t, fig1Src)
	args := []core.Value{fig1Request()}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		opts := core.FixedAssignment(fixedAssignment(iface, rng))
		checkBitIdentity(t, iface, "handle", args, opts)
	}
}

// Pinning a strict subset of ECVs exercises the partial-evaluation path:
// pinned values fold to constants, the rest stay enumeration dims.
func TestPartiallyPinnedECVs(t *testing.T) {
	iface := compileEIL(t, fig1Src)
	args := []core.Value{fig1Request()}
	for _, pin := range []map[string]core.Value{
		{"request_hit": core.Bool(true)},
		{"request_hit": core.Bool(false)},
		{"cache.local_cache_hit": core.Bool(true)},
	} {
		for _, mode := range []core.EvalOptions{core.Expected(), core.WorstCase(), core.MonteCarlo(129, 7)} {
			opts := mode
			opts.Fixed = pin
			checkBitIdentity(t, iface, "handle", args, opts)
		}
	}
}

func TestDumpMethodListsPasses(t *testing.T) {
	iface := compileEIL(t, fig1Src)
	out, err := DumpMethod(iface, "handle", []core.Value{fig1Request()})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lowered (inlined)", "folded", "specialized", "code", "deps:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestSpecializationCacheReuse(t *testing.T) {
	iface := compileEIL(t, fig1Src)
	prog, err := CompileMethod(iface, "handle")
	if err != nil || prog == nil {
		t.Fatalf("CompileMethod: %v", err)
	}
	p := prog.(*Program)
	args := []core.Value{fig1Request()}
	free := iface.TransitiveECVs()
	s1, ok1 := p.Specialize(args, nil, free)
	s2, ok2 := p.Specialize(args, nil, free)
	if !ok1 || !ok2 || s1 != s2 {
		t.Fatal("identical specializations not cached")
	}
	s3, ok3 := p.Specialize([]core.Value{fig1Request(), fig1Request()}, nil, free)
	if ok3 || s3 != nil {
		t.Fatal("arity mismatch must decline to the interpreter")
	}
}

// Methods whose static step bound reaches the interpreter's fuel budget
// must decline compilation: the interpreter's ErrFuelExhausted is part of
// the semantics, and a compiled program would run past it.
func TestFuelBoundDeclines(t *testing.T) {
	src := `interface t {
	  func spin() {
	    let x = 0
	    for i in 0 .. 2000000 { x = x + 1 }
	    return x
	  }
	}`
	iface := compileEIL(t, src)
	prog, err := CompileMethod(iface, "spin")
	if err != nil || prog == nil {
		t.Fatalf("CompileMethod: prog=%v err=%v", prog, err)
	}
	if spec, ok := prog.Specialize(nil, nil, nil); ok || spec != nil {
		t.Fatal("over-fuel loop must decline specialization")
	}
	// Through Eval, both paths must report fuel exhaustion.
	_, cerr := iface.Eval("spin", nil, core.Expected())
	var fe *eil.ErrFuelExhausted
	if !errors.As(cerr, &fe) {
		t.Fatalf("compiled-path Eval: want *eil.ErrFuelExhausted, got %v", cerr)
	}
	// A loop under the budget must compile and agree with the interpreter.
	ok := compileEIL(t, `interface t {
	  func f() {
	    let x = 0
	    for i in 0 .. 1000 { x = x + i * 3 }
	    return x
	  }
	}`)
	for _, opts := range allModeOpts(ok, 21) {
		checkBitIdentity(t, ok, "f", nil, opts)
	}
}

// The full GPT-2 EIL stack — deep inlining, 12-layer loops, two ECVs —
// must actually compile (not silently fall back) and agree with the
// interpreter bit for bit in every mode.
func TestGPT2StackCompilesBitIdentical(t *testing.T) {
	stack, err := nn.GPT2EILStack()
	if err != nil {
		t.Fatal(err)
	}
	args := []core.Value{core.Num(64), core.Num(4)}
	before := core.ReadProgramStats()
	for _, opts := range allModeOpts(stack, 31) {
		checkBitIdentity(t, stack, "generate", args, opts)
	}
	after := core.ReadProgramStats()
	if after.CompiledEvals == before.CompiledEvals {
		t.Fatal("GPT-2 stack did not evaluate through a compiled program")
	}
	checkBitIdentity(t, stack, "prefill", []core.Value{core.Num(128)}, core.Expected())
	checkBitIdentity(t, stack, "decode_token", []core.Value{core.Num(128)}, core.Expected())
}

// TestLayerCacheBypassedByCompiledPath pins down how the two caches
// divide the world: a LayerCache attached to a pure-EIL (compilable) tree
// sees no traffic — the flat program inlined every sub-call the layer
// would have memoized — while an Interpret-forced run over the same tree
// populates it, and both engines return bit-identical distributions.
func TestLayerCacheBypassedByCompiledPath(t *testing.T) {
	stack, err := nn.GPT2EILStack()
	if err != nil {
		t.Fatal(err)
	}
	args := []core.Value{core.Num(16), core.Num(4)}
	lc := core.NewLayerCache(0)
	opts := core.Expected()
	opts.Layer = lc

	before := core.ReadProgramStats()
	got, err := stack.Eval("generate", args, opts)
	if err != nil {
		t.Fatal(err)
	}
	after := core.ReadProgramStats()
	if after.CompiledEvals == before.CompiledEvals {
		t.Fatal("layer-attached eval did not use the compiled path")
	}
	if st := lc.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("compiled eval touched the layer cache: %+v", st)
	}

	iopts := opts
	iopts.Interpret = true
	want, err := stack.Eval("generate", args, iopts)
	if err != nil {
		t.Fatal(err)
	}
	if st := lc.Stats(); st.Misses == 0 {
		t.Fatal("interpreted eval did not populate the layer cache")
	}
	if !distBitsEqual(got, want) {
		t.Fatal("compiled (layer-attached) and interpreted distributions differ")
	}
}
