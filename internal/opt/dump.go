package opt

import (
	"fmt"
	"sort"
	"strings"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
)

// DumpMethod renders the compilation pipeline for one method, pass by
// pass: the lowered (fully inlined) IR, the constant-folded IR, the IR
// specialized for the given arguments with every ECV free, and the final
// instruction listing with its register constants and dependency set.
// Methods outside the compiled subset report the decline instead.
func DumpMethod(root *core.Interface, method string, args []core.Value) (string, error) {
	m := root.Method(method)
	if m == nil {
		return "", fmt.Errorf("opt: interface %s has no method %q", root.Name(), method)
	}
	fn, ok := m.Source.(*eil.FuncDecl)
	if !ok || fn == nil {
		return "", fmt.Errorf("opt: method %q has no EIL source (Go-native); nothing to compile", method)
	}
	if len(fn.Params) != 0 && len(args) != len(fn.Params) {
		return "", fmt.Errorf("opt: method %q takes %d args, got %d", method, len(fn.Params), len(args))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: lowered (inlined) ==\n", method)
	lw := &lowerer{}
	irArgs := make([]irExpr, len(fn.Params))
	for i := range irArgs {
		irArgs[i] = irArg{i: i}
	}
	blk, err := lw.lowerMethod(root, "", fn, irArgs, 0)
	if err != nil {
		fmt.Fprintf(&b, "declined: %v\n", err)
		return b.String(), nil
	}
	writeStmts(&b, blk.stmts, 1)

	fmt.Fprintf(&b, "\n== %s: folded ==\n", method)
	fc := &foldCtx{consts: map[*irSlot]irConst{}}
	folded := &irBlock{stmts: fc.foldStmts(blk.stmts), w0: blk.w0}
	writeStmts(&b, folded.stmts, 1)

	fmt.Fprintf(&b, "\n== %s: specialized (all ECVs free) ==\n", method)
	free := root.TransitiveECVs()
	freeIdx := make(map[string]int, len(free))
	for i, q := range free {
		freeIdx[q.QualifiedName()] = i
	}
	sc := &foldCtx{subst: true, args: args, pinned: map[string]core.Value{},
		freeIdx: freeIdx, consts: map[*irSlot]irConst{}}
	spec := &irBlock{stmts: sc.foldStmts(cloneStmts(folded.stmts, map[*irSlot]*irSlot{})), w0: folded.w0}
	if sc.err != nil {
		fmt.Fprintf(&b, "declined: %v\n", sc.err)
		return b.String(), nil
	}
	writeStmts(&b, spec.stmts, 1)

	fmt.Fprintf(&b, "\n== %s: code ==\n", method)
	bound, err := boundStmts(spec.stmts)
	if err != nil {
		fmt.Fprintf(&b, "declined: %v\n", err)
		return b.String(), nil
	}
	if satAdd(spec.w0, bound) >= int64(eil.DefaultFuel) {
		fmt.Fprintf(&b, "declined: static step bound %d exceeds fuel budget %d\n", bound, eil.DefaultFuel)
		return b.String(), nil
	}
	code, deps, err := emitProgram(spec, method)
	if err != nil {
		fmt.Fprintf(&b, "declined: %v\n", err)
		return b.String(), nil
	}
	writeCode(&b, code, deps, free)
	return b.String(), nil
}

func writeStmts(b *strings.Builder, stmts []irStmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, st := range stmts {
		switch s := st.(type) {
		case *irLet:
			fmt.Fprintf(b, "%slet %s = %s\n", ind, slotName(s.slot), exprString(s.init))
		case *irAssign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, slotName(s.slot), exprString(s.x))
		case *irIf:
			fmt.Fprintf(b, "%sif %s {\n", ind, exprString(s.cond))
			writeStmts(b, s.then, depth+1)
			if len(s.els) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				writeStmts(b, s.els, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *irFor:
			fmt.Fprintf(b, "%sfor %s in %s .. %s {\n", ind, slotName(s.slot), exprString(s.from), exprString(s.to))
			writeStmts(b, s.body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *irReturn:
			fmt.Fprintf(b, "%sreturn %s\n", ind, exprString(s.x))
		}
	}
}

func slotName(s *irSlot) string { return fmt.Sprintf("%s#%d", s.name, s.id) }

func exprString(e irExpr) string {
	switch x := e.(type) {
	case irConst:
		return x.v.String()
	case irArg:
		return fmt.Sprintf("arg%d", x.i)
	case irVar:
		return slotName(x.slot)
	case irECV:
		return fmt.Sprintf("ecv(%s)", x.qn)
	case irFree:
		return fmt.Sprintf("free%d(%s)", x.idx, x.qn)
	case *irUnary:
		return fmt.Sprintf("(%s %s)", x.op, exprString(x.x))
	case *irBinary:
		return fmt.Sprintf("(%s %s %s)", exprString(x.x), x.op, exprString(x.y))
	case *irCond:
		return fmt.Sprintf("(%s ? %s : %s)", exprString(x.cond), exprString(x.then), exprString(x.els))
	case *irCall:
		parts := make([]string, len(x.args))
		for i, a := range x.args {
			parts[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.name, strings.Join(parts, ", "))
	case *irField:
		return fmt.Sprintf("%s.%s", exprString(x.x), x.name)
	case *irIndex:
		return fmt.Sprintf("%s[%s]", exprString(x.x), exprString(x.i))
	case *irRecord:
		parts := make([]string, len(x.vals))
		for i := range x.vals {
			parts[i] = fmt.Sprintf("%s: %s", x.names[i], exprString(x.vals[i]))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *irList:
		parts := make([]string, len(x.elems))
		for i, el := range x.elems {
			parts[i] = exprString(el)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *irBlock:
		var b strings.Builder
		b.WriteString("block {\n")
		writeStmts(&b, x.stmts, 2)
		b.WriteString("  }")
		return b.String()
	case *irSteps:
		return exprString(x.x)
	default:
		return fmt.Sprintf("%T", e)
	}
}

func writeCode(b *strings.Builder, p *progCode, deps map[int]bool, free []core.QualifiedECV) {
	fmt.Fprintf(b, "registers: %d float, %d bool, %d value\n",
		len(p.initF), len(p.initB), len(p.initV))
	if len(p.constsF) > 0 {
		fmt.Fprintf(b, "float constants:\n")
		for _, c := range p.constsF {
			fmt.Fprintf(b, "  f%d = %v\n", c.reg, c.v)
		}
	}
	if len(p.constsB) > 0 {
		fmt.Fprintf(b, "bool constants:\n")
		for _, c := range p.constsB {
			fmt.Fprintf(b, "  b%d = %v\n", c.reg, c.v)
		}
	}
	if len(p.constsV) > 0 {
		fmt.Fprintf(b, "value constants:\n")
		for _, c := range p.constsV {
			fmt.Fprintf(b, "  v%d = %s\n", c.reg, c.v.String())
		}
	}
	ds := make([]int, 0, len(deps))
	for d := range deps {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	if len(ds) == 0 {
		fmt.Fprintf(b, "deps: none (fully collapsed: one evaluation covers every assignment)\n")
	} else {
		names := make([]string, len(ds))
		for i, d := range ds {
			names[i] = free[d].QualifiedName()
		}
		fmt.Fprintf(b, "deps: %s\n", strings.Join(names, ", "))
	}
	fmt.Fprintf(b, "prefix: %d of %d instructions run once per specialization\n",
		prefixLen(p.code), len(p.code))
	for pc, in := range p.code {
		fmt.Fprintf(b, "%4d  %-9s", pc, opNames[in.Op])
		switch in.Op {
		case opJmp:
			fmt.Fprintf(b, "-> %d", in.A)
		case opJmpIfNot:
			fmt.Fprintf(b, "b%d -> %d", in.B, in.A)
		case opMovF, opNegF, opCeilRaw, opAbsF, opCeilF, opFloorF, opSqrtF, opLog2F:
			fmt.Fprintf(b, "f%d <- f%d", in.A, in.B)
		case opMovB, opNotB:
			fmt.Fprintf(b, "b%d <- b%d", in.A, in.B)
		case opMovV:
			fmt.Fprintf(b, "v%d <- v%d", in.A, in.B)
		case opAddF, opSubF, opMulF, opDivF, opModF, opMinF, opMaxF, opPowF:
			fmt.Fprintf(b, "f%d <- f%d, f%d", in.A, in.B, in.C)
		case opLtF, opLeF, opGtF, opGeF, opEqF, opNeF:
			fmt.Fprintf(b, "b%d <- f%d, f%d", in.A, in.B, in.C)
		case opEqB, opNeB:
			fmt.Fprintf(b, "b%d <- b%d, b%d", in.A, in.B, in.C)
		case opEqV, opNeV:
			fmt.Fprintf(b, "b%d <- v%d, v%d", in.A, in.B, in.C)
		case opLenV, opNumV:
			fmt.Fprintf(b, "f%d <- v%d", in.A, in.B)
		case opBoolV:
			fmt.Fprintf(b, "b%d <- v%d", in.A, in.B)
		case opBoxF:
			fmt.Fprintf(b, "v%d <- f%d", in.A, in.B)
		case opBoxB:
			fmt.Fprintf(b, "v%d <- b%d", in.A, in.B)
		case opFieldV:
			fmt.Fprintf(b, "v%d <- v%d.%s", in.A, in.B, p.names[in.C])
		case opIndexV:
			fmt.Fprintf(b, "v%d <- v%d[f%d]", in.A, in.B, in.C)
		case opRecordV, opListV:
			fmt.Fprintf(b, "v%d <- aux[%d:%d]", in.A, in.B, in.C)
		case opLoadF:
			fmt.Fprintf(b, "f%d <- ecv %s", in.A, free[in.B].QualifiedName())
		case opLoadB:
			fmt.Fprintf(b, "b%d <- ecv %s", in.A, free[in.B].QualifiedName())
		case opLoadV:
			fmt.Fprintf(b, "v%d <- ecv %s", in.A, free[in.B].QualifiedName())
		case opFrameRet:
			fmt.Fprintf(b, "f%d <- f%d, -> %d", in.A, in.B, in.C)
		case opFail:
			fmt.Fprintf(b, "%q", p.msgs[in.A])
		case opEnd:
			fmt.Fprintf(b, "f%d", in.A)
		}
		b.WriteByte('\n')
	}
}
