package opt

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"energyclarity/internal/core"
)

// Instr is one flat instruction: an opcode plus three register/operand
// fields. Operands index the float (f), bool (b), or value (v) register
// bank, the instruction stream (jump targets), the free-ECV slice, or the
// program's name/message/aux pools, depending on the opcode.
type Instr struct {
	Op      uint8
	A, B, C int32
}

const (
	opNop      uint8 = iota
	opJmp            // pc = A
	opJmpIfNot       // if !b[B]: pc = A
	opMovF           // f[A] = f[B]
	opMovB           // b[A] = b[B]
	opMovV           // v[A] = v[B]
	opAddF           // f[A] = f[B] + f[C]
	opSubF
	opMulF
	opDivF // errors on zero divisor, like the interpreter
	opModF // math.Mod; errors on zero divisor
	opNegF // f[A] = -f[B]
	opNotB // b[A] = !b[B]
	opLtF  // b[A] = f[B] < f[C]
	opLeF
	opGtF
	opGeF
	opEqF // b[A] = f[B] == f[C] (Value.Equal on nums is float ==)
	opNeF
	opEqB
	opNeB
	opEqV // b[A] = v[B].Equal(v[C])
	opNeV
	opCeilRaw // f[A] = math.Ceil(f[B]); unchecked (loop prologue)
	opMinF    // builtins: result checked finite, like eil's num1/num2
	opMaxF
	opPowF
	opAbsF
	opCeilF
	opFloorF
	opSqrtF
	opLog2F
	opLenV     // f[A] = len(v[B]) for list/str; errors otherwise
	opFieldV   // v[A] = v[B].Field(names[C]); errors when absent
	opIndexV   // v[A] = v[B].Index(int(f[C])); errors out of range
	opNumV     // f[A] = v[B] as num; errors on other kinds
	opBoolV    // b[A] = v[B] as bool; errors on other kinds
	opBoxF     // v[A] = Num(f[B])
	opBoxB     // v[A] = Bool(b[B])
	opRecordV  // v[A] = record of C (nameIdx, vreg) pairs at aux[B:]
	opListV    // v[A] = list of C vregs at aux[B:]
	opLoadF    // f[A] = vals[B] as num; errors on kind mismatch
	opLoadB    // b[A] = vals[B] as bool; errors on kind mismatch
	opLoadV    // v[A] = vals[B]
	opFrameRet // frame return: error unless f[B] finite; f[A] = f[B]; pc = C
	opFail     // unconditional error msgs[A] (type errors on a taken path)
	opEnd      // return f[A]
)

var opNames = [...]string{
	opNop: "nop", opJmp: "jmp", opJmpIfNot: "jmpifnot",
	opMovF: "movf", opMovB: "movb", opMovV: "movv",
	opAddF: "addf", opSubF: "subf", opMulF: "mulf", opDivF: "divf", opModF: "modf",
	opNegF: "negf", opNotB: "notb",
	opLtF: "ltf", opLeF: "lef", opGtF: "gtf", opGeF: "gef",
	opEqF: "eqf", opNeF: "nef", opEqB: "eqb", opNeB: "neb", opEqV: "eqv", opNeV: "nev",
	opCeilRaw: "ceilraw",
	opMinF:    "minf", opMaxF: "maxf", opPowF: "powf",
	opAbsF: "absf", opCeilF: "ceilf", opFloorF: "floorf", opSqrtF: "sqrtf", opLog2F: "log2f",
	opLenV: "lenv", opFieldV: "fieldv", opIndexV: "indexv",
	opNumV: "numv", opBoolV: "boolv", opBoxF: "boxf", opBoxB: "boxb",
	opRecordV: "recordv", opListV: "listv",
	opLoadF: "loadf", opLoadB: "loadb", opLoadV: "loadv",
	opFrameRet: "framert", opFail: "fail", opEnd: "end",
}

// progCode is one emitted program: the instruction stream plus its
// constant-initialized register banks and string pools. It is immutable
// after emission and shared by every Run.
type progCode struct {
	code   []Instr
	initF  []float64 // initial float bank (constants baked in)
	initB  []bool
	initV  []core.Value
	names  []string // field/record names
	msgs   []string // opFail messages
	aux    []int32  // operand lists for record/list construction
	method string   // for error prefixes

	// disassembly metadata: which registers hold which constants
	constsF []constReg[float64]
	constsB []constReg[bool]
	constsV []constReg[core.Value]
}

type constReg[T any] struct {
	reg int32
	v   T
}

type regFile struct {
	f []float64
	b []bool
	v []core.Value
}

func (p *progCode) errf(format string, args ...interface{}) error {
	return fmt.Errorf("opt: func %s: %s", p.method, fmt.Sprintf(format, args...))
}

// exec runs the program from pc=start until opEnd (stop < 0) or until pc
// reaches stop (prefix execution). It returns the opEnd result.
func (p *progCode) exec(rf *regFile, vals []core.Value, start, stop int32) (float64, error) {
	code := p.code
	f, b, v := rf.f, rf.b, rf.v
	end := int32(len(code))
	if stop >= 0 {
		end = stop
	}
	for pc := start; pc < end; pc++ {
		in := code[pc]
		switch in.Op {
		case opNop:
		case opJmp:
			pc = in.A - 1
		case opJmpIfNot:
			if !b[in.B] {
				pc = in.A - 1
			}
		case opMovF:
			f[in.A] = f[in.B]
		case opMovB:
			b[in.A] = b[in.B]
		case opMovV:
			v[in.A] = v[in.B]
		case opAddF:
			f[in.A] = f[in.B] + f[in.C]
		case opSubF:
			f[in.A] = f[in.B] - f[in.C]
		case opMulF:
			f[in.A] = f[in.B] * f[in.C]
		case opDivF:
			d := f[in.C]
			if d == 0 {
				return 0, p.errf("division by zero")
			}
			f[in.A] = f[in.B] / d
		case opModF:
			d := f[in.C]
			if d == 0 {
				return 0, p.errf("modulo by zero")
			}
			f[in.A] = math.Mod(f[in.B], d)
		case opNegF:
			f[in.A] = -f[in.B]
		case opNotB:
			b[in.A] = !b[in.B]
		case opLtF:
			b[in.A] = f[in.B] < f[in.C]
		case opLeF:
			b[in.A] = f[in.B] <= f[in.C]
		case opGtF:
			b[in.A] = f[in.B] > f[in.C]
		case opGeF:
			b[in.A] = f[in.B] >= f[in.C]
		case opEqF:
			b[in.A] = f[in.B] == f[in.C]
		case opNeF:
			b[in.A] = f[in.B] != f[in.C]
		case opEqB:
			b[in.A] = b[in.B] == b[in.C]
		case opNeB:
			b[in.A] = b[in.B] != b[in.C]
		case opEqV:
			b[in.A] = v[in.B].Equal(v[in.C])
		case opNeV:
			b[in.A] = !v[in.B].Equal(v[in.C])
		case opCeilRaw:
			f[in.A] = math.Ceil(f[in.B])
		case opMinF:
			r := math.Min(f[in.B], f[in.C])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("min(%g, %g) is not finite", f[in.B], f[in.C])
			}
			f[in.A] = r
		case opMaxF:
			r := math.Max(f[in.B], f[in.C])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("max(%g, %g) is not finite", f[in.B], f[in.C])
			}
			f[in.A] = r
		case opPowF:
			r := math.Pow(f[in.B], f[in.C])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("pow(%g, %g) is not finite", f[in.B], f[in.C])
			}
			f[in.A] = r
		case opAbsF:
			r := math.Abs(f[in.B])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("abs(%g) is not finite", f[in.B])
			}
			f[in.A] = r
		case opCeilF:
			r := math.Ceil(f[in.B])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("ceil(%g) is not finite", f[in.B])
			}
			f[in.A] = r
		case opFloorF:
			r := math.Floor(f[in.B])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("floor(%g) is not finite", f[in.B])
			}
			f[in.A] = r
		case opSqrtF:
			r := math.Sqrt(f[in.B])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("sqrt(%g) is not finite", f[in.B])
			}
			f[in.A] = r
		case opLog2F:
			r := math.Log2(f[in.B])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("log2(%g) is not finite", f[in.B])
			}
			f[in.A] = r
		case opLenV:
			val := v[in.B]
			switch val.Kind() {
			case core.KindList:
				f[in.A] = float64(val.Len())
			case core.KindStr:
				s, _ := val.AsStr()
				f[in.A] = float64(len(s))
			default:
				return 0, p.errf("len: argument is %s, want list or str", val.Kind())
			}
		case opFieldV:
			fv, ok := v[in.B].Field(p.names[in.C])
			if !ok {
				return 0, p.errf("value %s has no field %q", v[in.B].Kind(), p.names[in.C])
			}
			v[in.A] = fv
		case opIndexV:
			idx := int(f[in.C])
			el, ok := v[in.B].Index(idx)
			if !ok {
				return 0, p.errf("index %d out of range (len %d)", idx, v[in.B].Len())
			}
			v[in.A] = el
		case opNumV:
			n, ok := v[in.B].AsNum()
			if !ok {
				return 0, p.errf("value is %s, want num", v[in.B].Kind())
			}
			f[in.A] = n
		case opBoolV:
			bv, ok := v[in.B].AsBool()
			if !ok {
				return 0, p.errf("value is %s, want bool", v[in.B].Kind())
			}
			b[in.A] = bv
		case opBoxF:
			v[in.A] = core.Num(f[in.B])
		case opBoxB:
			v[in.A] = core.Bool(b[in.B])
		case opRecordV:
			fields := make(map[string]core.Value, in.C)
			for k := int32(0); k < in.C; k++ {
				nameIdx := p.aux[in.B+2*k]
				reg := p.aux[in.B+2*k+1]
				fields[p.names[nameIdx]] = v[reg]
			}
			v[in.A] = core.Record(fields)
		case opListV:
			elems := make([]core.Value, in.C)
			for k := int32(0); k < in.C; k++ {
				elems[k] = v[p.aux[in.B+k]]
			}
			v[in.A] = core.List(elems...)
		case opLoadF:
			n, ok := vals[in.B].AsNum()
			if !ok {
				return 0, p.errf("ECV value is %s, want num", vals[in.B].Kind())
			}
			f[in.A] = n
		case opLoadB:
			bv, ok := vals[in.B].AsBool()
			if !ok {
				return 0, p.errf("ECV value is %s, want bool", vals[in.B].Kind())
			}
			b[in.A] = bv
		case opLoadV:
			v[in.A] = vals[in.B]
		case opFrameRet:
			r := f[in.B]
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return 0, p.errf("returned non-finite energy")
			}
			f[in.A] = r
			pc = in.C - 1
		case opFail:
			return 0, p.errf("%s", p.msgs[in.A])
		case opEnd:
			return f[in.A], nil
		default:
			return 0, p.errf("bad opcode %d at pc %d", in.Op, pc)
		}
	}
	if stop >= 0 {
		return 0, nil // prefix execution stops by falling through
	}
	return 0, p.errf("program ran off the end")
}

// isLoad reports whether op reads the free-ECV slice.
func isLoad(op uint8) bool { return op == opLoadF || op == opLoadB || op == opLoadV }

// prefixLen finds the longest leading run of instructions that reads no
// free ECV and that control cannot jump out of: running it once and
// snapshotting the registers is then equivalent to running it per
// assignment. Bit-identity is structural — the same instructions run on
// the same inputs, just not repeatedly.
func prefixLen(code []Instr) int32 {
	k := int32(len(code))
	for i, in := range code {
		if isLoad(in.Op) && int32(i) < k {
			k = int32(i)
		}
	}
	// Shrink until no jump inside [0,k) targets beyond k.
	for {
		shrunk := false
		for i := int32(0); i < k; i++ {
			var tgt int32 = -1
			switch code[i].Op {
			case opJmp, opJmpIfNot:
				tgt = code[i].A
			case opFrameRet:
				tgt = code[i].C
			case opEnd, opFail:
				// Terminal inside the prefix is fine: exec stops there.
				continue
			}
			if tgt > k {
				k = i
				shrunk = true
			}
		}
		if !shrunk {
			return k
		}
	}
}

// specialized is the SpecializedProgram implementation: one emitted
// program plus its dependency set and the lazily computed post-prefix
// register snapshot. Safe for concurrent Run calls.
type specialized struct {
	p         *progCode
	deps      []int
	nFree     int
	prefixEnd int32

	once    sync.Once
	snap    regFile // registers after the assignment-independent prefix
	snapErr error
	// constResult memoizes the single result of a program with no free-ECV
	// dependence at all — the fully collapsed case: the whole evaluation
	// is the prefix.
	isConst     bool
	constResult float64

	pool sync.Pool
}

func newSpecialized(p *progCode, deps map[int]bool, nFree int) *specialized {
	ds := make([]int, 0, len(deps))
	for d := range deps {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	s := &specialized{p: p, deps: ds, nFree: nFree, isConst: len(ds) == 0}
	s.prefixEnd = prefixLen(p.code)
	s.pool.New = func() any {
		return &regFile{
			f: make([]float64, len(p.initF)),
			b: make([]bool, len(p.initB)),
			v: make([]core.Value, len(p.initV)),
		}
	}
	return s
}

func (s *specialized) Deps() []int { return s.deps }

// ensurePrefix runs the assignment-independent prologue once. For a
// program with no dependencies this is the entire evaluation and the
// result is memoized; otherwise the register file snapshot seeds every
// subsequent Run.
func (s *specialized) ensurePrefix() {
	s.once.Do(func() {
		rf := &regFile{
			f: append([]float64(nil), s.p.initF...),
			b: append([]bool(nil), s.p.initB...),
			v: append([]core.Value(nil), s.p.initV...),
		}
		if s.isConst {
			s.constResult, s.snapErr = s.p.exec(rf, nil, 0, -1)
			return
		}
		_, s.snapErr = s.p.exec(rf, nil, 0, s.prefixEnd)
		s.snap = *rf
	})
}

func (s *specialized) Run(vals []core.Value) (float64, error) {
	s.ensurePrefix()
	if s.snapErr != nil {
		return 0, s.snapErr
	}
	if s.isConst {
		return s.constResult, nil
	}
	rf := s.pool.Get().(*regFile)
	copy(rf.f, s.snap.f)
	copy(rf.b, s.snap.b)
	copy(rf.v, s.snap.v)
	res, err := s.p.exec(rf, vals, s.prefixEnd, -1)
	s.pool.Put(rf)
	return res, err
}

// FillTable bulk-evaluates the dependent sub-space: the shared prefix runs
// once, then only the suffix re-executes per projected assignment. Values
// are bit-identical to per-index Run calls by construction.
func (s *specialized) FillTable(dims [][]core.Value, out []float64) (bool, error) {
	s.ensurePrefix()
	if s.snapErr != nil {
		return true, s.snapErr
	}
	if s.isConst {
		for i := range out {
			out[i] = s.constResult
		}
		return true, nil
	}
	// Row-major strides matching core's expansion: last dimension fastest.
	strides := make([]int, len(dims))
	total := 1
	for j := len(dims) - 1; j >= 0; j-- {
		strides[j] = total
		total *= len(dims[j])
	}
	if total > len(out) {
		return true, s.p.errf("internal: table size %d exceeds buffer %d", total, len(out))
	}
	vals := make([]core.Value, s.nFree)
	rf := s.pool.Get().(*regFile)
	defer s.pool.Put(rf)
	for idx := 0; idx < total; idx++ {
		for j, d := range s.deps {
			vals[d] = dims[j][(idx/strides[j])%len(dims[j])]
		}
		copy(rf.f, s.snap.f)
		copy(rf.b, s.snap.b)
		copy(rf.v, s.snap.v)
		res, err := s.p.exec(rf, vals, s.prefixEnd, -1)
		if err != nil {
			return true, err
		}
		out[idx] = res
	}
	return true, nil
}
