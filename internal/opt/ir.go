// Package opt is the EIL optimizing compiler: it lowers checked EIL method
// bodies (core.Method.Source) into flat instruction programs executed by a
// tight switch loop, with no AST pointers and no per-step allocations.
//
// The pipeline is
//
//	lower      — resolve names, inline every Self/E call (cycle- and
//	             depth-guarded), producing a single tree IR per method
//	fold       — constant folding and bit-exact arithmetic simplification
//	specialize — partial evaluation for one Eval's arguments and pinned
//	             ECVs: both become immediates, dead branches drop, loop
//	             bounds become static, and the residual program's
//	             interpreter step count is bounded against eil.DefaultFuel
//	emit       — flat []Instr over three register banks (floats, bools,
//	             values) with jump-based control flow
//
// Compiled evaluation is bit-identical to the tree-walking interpreter:
// folding reuses the interpreter's own evaluators (eil.ApplyBinary,
// eil.CallBuiltin), only all-constant subtrees fold, simplifications are
// restricted to IEEE-exact identities, and any construct outside the
// compiled subset declines so core falls back to the interpreter.
// Declining is always safe — the fallback defines the reference semantics.
package opt

import (
	"energyclarity/internal/core"
	"energyclarity/internal/eil"
)

// irType is the static type lattice for emission: num and bool map to
// dedicated register banks; val is the dynamic top (boxed core.Value).
type irType uint8

const (
	tUnknown irType = iota
	tNum
	tBool
	tVal
)

func (t irType) String() string {
	switch t {
	case tNum:
		return "num"
	case tBool:
		return "bool"
	case tVal:
		return "val"
	default:
		return "?"
	}
}

func joinType(a, b irType) irType {
	if a == b {
		return a
	}
	if a == tUnknown {
		return b
	}
	if b == tUnknown {
		return a
	}
	return tVal
}

// irSlot is one local variable (let binding, loop variable, or inlined
// parameter). Slots are unique per declaration — lexical scoping is
// resolved during lowering — so constant propagation needs no scope
// tracking: a slot's init dominates every read.
type irSlot struct {
	name    string
	id      int
	mutated bool   // target of an assignment, or a loop variable
	t       irType // filled by the emit typing pass
	reg     int32  // register within the t bank, assigned at emit
}

// irExpr nodes carry w, the upper bound on the interpreter steps their
// ORIGINAL (pre-fold) source form costs. Fold accumulates weights into the
// constants it produces so the fuel bound computed on folded IR never
// under-counts what the interpreter would spend — if the interpreter could
// exhaust DefaultFuel, specialization must decline, not diverge.
type irExpr interface{ isExpr() }

type irConst struct {
	v core.Value
	w int64 // steps of the subtree this constant folded from
}

// irArg is a read of method argument i; it exists only between lowering
// and specialization (arguments substitute to constants).
type irArg struct{ i int }

type irVar struct{ slot *irSlot }

// irECV is an ECV read by qualified name; specialization replaces it with
// an irConst (pinned) or an irFree (enumerated/sampled).
type irECV struct {
	qn string
	t  irType // from the ECV's declared support kinds
}

// irFree is a post-specialization read of free ECV idx (an index into the
// free slice core passes to SpecializedProgram.Run).
type irFree struct {
	idx int
	qn  string
	t   irType
}

type irUnary struct {
	op eil.TokKind
	x  irExpr
}

type irBinary struct {
	op   eil.TokKind
	x, y irExpr
}

// irCond is a short-circuit conditional expression: && and || lower to it,
// and fold produces it nowhere else. Emission evaluates only the taken arm.
type irCond struct{ cond, then, els irExpr }

// irCall is a builtin call (the only calls left after inlining).
type irCall struct {
	name string
	args []irExpr
}

type irField struct {
	x    irExpr
	name string
}

type irIndex struct{ x, i irExpr }

type irRecord struct {
	names []string
	vals  []irExpr
}

type irList struct{ elems []irExpr }

// irBlock is one call frame: the top-level method body or an inlined
// callee. Its returns coerce to num and check finiteness (the interpreter
// does both per frame), so a block's static type is always num. w0 is the
// CallExpr evaluation step for inlined frames (0 for the top frame).
type irBlock struct {
	stmts []irStmt
	w0    int64
}

// irSteps wraps a simplified expression with the interpreter steps the
// simplification removed, keeping the fuel bound an over-approximation.
type irSteps struct {
	x     irExpr
	extra int64
}

func (irConst) isExpr()   {}
func (irArg) isExpr()     {}
func (irVar) isExpr()     {}
func (irECV) isExpr()     {}
func (irFree) isExpr()    {}
func (*irUnary) isExpr()  {}
func (*irBinary) isExpr() {}
func (*irCond) isExpr()   {}
func (*irCall) isExpr()   {}
func (*irField) isExpr()  {}
func (*irIndex) isExpr()  {}
func (*irRecord) isExpr() {}
func (*irList) isExpr()   {}
func (*irBlock) isExpr()  {}
func (*irSteps) isExpr()  {}

type irStmt interface{ isStmt() }

// irLet binds a slot. noStep marks synthetic lets (inlined parameter
// bindings) the interpreter executes without a statement step.
type irLet struct {
	slot   *irSlot
	init   irExpr
	noStep bool
}

type irAssign struct {
	slot *irSlot
	x    irExpr
}

type irIf struct {
	cond      irExpr
	then, els []irStmt
}

type irFor struct {
	slot     *irSlot
	from, to irExpr
	body     []irStmt
}

type irReturn struct{ x irExpr }

func (*irLet) isStmt()    {}
func (*irAssign) isStmt() {}
func (*irIf) isStmt()     {}
func (*irFor) isStmt()    {}
func (*irReturn) isStmt() {}

// constOf returns the constant behind e, looking through irSteps wrappers.
func constOf(e irExpr) (core.Value, bool) {
	for {
		switch x := e.(type) {
		case irConst:
			return x.v, true
		case *irSteps:
			e = x.x
		default:
			return core.Value{}, false
		}
	}
}

// constBool returns e's value if it is a constant bool.
func constBool(e irExpr) (bool, bool) {
	v, ok := constOf(e)
	if !ok {
		return false, false
	}
	return v.AsBool()
}
