// Package rapl simulates an Intel RAPL-style energy counter: an MSR whose
// value counts fixed-size energy units in a 32-bit register that wraps
// around. The paper names RAPL as the CPU-side measurement mechanism for
// energy-bug testing (§4.2) and as an example of today's too-coarse
// measurement interfaces (§6).
//
// The counter reads from any Device exposing cumulative true energy; the
// RAPL-specific artifacts — unit quantization and 32-bit wraparound — are
// added here, so verification code exercises the same accounting pitfalls
// real RAPL clients face.
package rapl

import (
	"fmt"
	"math"

	"energyclarity/internal/energy"
)

// Device is an energy source with a cumulative counter (e.g. a simulated
// CPU package).
type Device interface {
	PackageEnergy() energy.Joules
}

// DefaultESU is the default energy-status-unit exponent: units of 2^-14 J
// (~61 µJ), matching common hardware.
const DefaultESU = 14

// Counter models MSR_PKG_ENERGY_STATUS for one package.
type Counter struct {
	dev Device
	esu uint // unit = 2^-esu joules
}

// NewCounter returns a counter over dev with the given energy-status-unit
// exponent (use DefaultESU if unsure). It panics on nil device or esu
// outside [1, 31].
func NewCounter(dev Device, esu uint) *Counter {
	if dev == nil {
		panic("rapl: nil device")
	}
	if esu < 1 || esu > 31 {
		panic(fmt.Sprintf("rapl: bad energy status unit exponent %d", esu))
	}
	return &Counter{dev: dev, esu: esu}
}

// UnitJoules returns the energy represented by one counter unit.
func (c *Counter) UnitJoules() energy.Joules {
	return energy.Joules(math.Ldexp(1, -int(c.esu)))
}

// ReadMSR returns the current raw 32-bit register value: total energy in
// units, truncated, modulo 2^32 — exactly how the hardware register
// behaves (it wraps in under an hour at high power on real parts).
func (c *Counter) ReadMSR() uint32 {
	units := float64(c.dev.PackageEnergy()) / float64(c.UnitJoules())
	return uint32(uint64(units)) // truncate then wrap
}

// Window accumulates energy across reads, handling wraparound, the way a
// correct RAPL client must.
type Window struct {
	counter *Counter
	last    uint32
	total   uint64 // units
}

// NewWindow starts a measurement window at the current counter value.
func (c *Counter) NewWindow() *Window {
	return &Window{counter: c, last: c.ReadMSR()}
}

// Poll reads the register and accumulates the delta. Callers must poll at
// least once per wrap period or energy is silently lost — the same
// constraint real RAPL imposes; this simulation faithfully loses it too.
func (w *Window) Poll() {
	cur := w.counter.ReadMSR()
	delta := cur - w.last // wraparound-correct in uint32 arithmetic
	w.total += uint64(delta)
	w.last = cur
}

// Energy polls once more and returns the energy accumulated in the window.
func (w *Window) Energy() energy.Joules {
	w.Poll()
	return energy.Joules(float64(w.total)) * w.counter.UnitJoules()
}
