package rapl

import (
	"math"
	"testing"

	"energyclarity/internal/energy"
)

type fakePkg struct{ e energy.Joules }

func (f *fakePkg) PackageEnergy() energy.Joules { return f.e }

func TestUnitJoules(t *testing.T) {
	c := NewCounter(&fakePkg{}, 14)
	want := math.Ldexp(1, -14)
	if got := float64(c.UnitJoules()); got != want {
		t.Fatalf("unit = %v, want %v", got, want)
	}
}

func TestNewCounterValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil-device": func() { NewCounter(nil, 14) },
		"esu-zero":   func() { NewCounter(&fakePkg{}, 0) },
		"esu-huge":   func() { NewCounter(&fakePkg{}, 32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestReadMSRQuantizes(t *testing.T) {
	p := &fakePkg{}
	c := NewCounter(p, DefaultESU)
	unit := float64(c.UnitJoules())
	p.e = energy.Joules(10.5 * unit)
	if got := c.ReadMSR(); got != 10 {
		t.Fatalf("ReadMSR = %d, want 10 (truncation)", got)
	}
}

func TestWindowAccumulates(t *testing.T) {
	p := &fakePkg{}
	c := NewCounter(p, DefaultESU)
	w := c.NewWindow()
	p.e = 5
	got := float64(w.Energy())
	if math.Abs(got-5) > float64(c.UnitJoules()) {
		t.Fatalf("window energy %v, want ≈5", got)
	}
}

func TestWindowHandlesWraparound(t *testing.T) {
	p := &fakePkg{}
	c := NewCounter(p, DefaultESU)
	unit := float64(c.UnitJoules())

	// Start near the top of the 32-bit register.
	start := (math.Pow(2, 32) - 100) * unit
	p.e = energy.Joules(start)
	w := c.NewWindow()

	// Cross the wrap in two polls.
	p.e = energy.Joules(start + 50*unit)
	w.Poll()
	p.e = energy.Joules(start + 300*unit)
	got := float64(w.Energy())
	want := 300 * unit
	if math.Abs(got-want) > 2*unit {
		t.Fatalf("wraparound window = %v, want ≈%v", got, want)
	}
}

func TestWindowLosesEnergyWithoutPolling(t *testing.T) {
	// Skipping polls across a full wrap loses one wrap of energy — the
	// documented (and real-hardware) failure mode.
	p := &fakePkg{}
	c := NewCounter(p, DefaultESU)
	unit := float64(c.UnitJoules())
	w := c.NewWindow()
	full := math.Pow(2, 32) * unit
	p.e = energy.Joules(full + 10*unit) // a full wrap plus a little
	got := float64(w.Energy())
	if math.Abs(got-10*unit) > 2*unit {
		t.Fatalf("expected wrap loss, got %v (want ≈%v)", got, 10*unit)
	}
}

func TestMultipleWindowsIndependent(t *testing.T) {
	p := &fakePkg{}
	c := NewCounter(p, DefaultESU)
	w1 := c.NewWindow()
	p.e = 3
	w2 := c.NewWindow()
	p.e = 7
	e1 := float64(w1.Energy())
	e2 := float64(w2.Energy())
	unit := float64(c.UnitJoules())
	if math.Abs(e1-7) > 2*unit || math.Abs(e2-4) > 2*unit {
		t.Fatalf("windows = %v, %v; want ≈7, ≈4", e1, e2)
	}
}
