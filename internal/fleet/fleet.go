package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"energyclarity/internal/core"
	"energyclarity/internal/eisvc"
	"energyclarity/internal/energy"
	"energyclarity/internal/faultsim"
)

// DefaultReplication is how many nodes own each interface stack: the
// primary plus one replica, so any single node failure leaves every
// shard served.
const DefaultReplication = 2

// DefaultPeerTimeout bounds one peer cache probe. A probe is a pure memo
// read (sub-millisecond on loopback); anything slower means the peer is
// dead, partitioned, or overloaded, and evaluating locally is cheaper
// than waiting.
const DefaultPeerTimeout = 75 * time.Millisecond

// Config sizes a fleet. The zero value makes a 3-node cluster with
// replication 2.
type Config struct {
	// Nodes is the initial node count (default 3).
	Nodes int
	// Replication is how many ring owners each interface stack gets
	// (default DefaultReplication; capped at the node count at lookup).
	Replication int
	// VirtualNodes is the ring points per node (default DefaultVirtualNodes).
	VirtualNodes int
	// Node is the per-daemon configuration; NodeID is overwritten with the
	// fleet-assigned ID.
	Node eisvc.Config
	// PeerTimeout bounds one peer cache probe (default DefaultPeerTimeout).
	PeerTimeout time.Duration
	// NoPeerForwarding disables the peer cache path: memo misses always
	// evaluate locally. For benchmarking the forwarding itself.
	NoPeerForwarding bool
	// FlakyEvery, when positive, wraps every node's listener so each Nth
	// accepted connection is dropped (faultsim.FlakyListener) — fleet-wide
	// low-level network flakiness for resilience tests.
	FlakyEvery int
	// SnapshotDir, when set, turns on persistent warm-start caches: each
	// node loads <dir>/<id>.eisnap at boot (a missing or corrupt file
	// means a cold start, never an error), DrainNode saves one after the
	// drain completes, and RestartNode recovers a killed node's memo from
	// its last snapshot instead of re-homing every key over HTTP.
	SnapshotDir string
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Replication <= 0 {
		c.Replication = DefaultReplication
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = DefaultPeerTimeout
	}
	return c
}

type nodeState int

const (
	stateLive nodeState = iota
	stateDraining
	stateDead
)

// Node is one daemon in the fleet: an eisvc.Server bound to a loopback
// listener, plus the fleet's plumbing around it.
type Node struct {
	ID     string
	Server *eisvc.Server
	URL    string

	ln   *faultsim.FlakyListener
	hs   *http.Server
	peer *eisvc.Client // short-timeout, no-retry client for cache probes
	done chan struct{} // closed when the HTTP server loop exits

	mu    sync.Mutex
	state nodeState
}

func (n *Node) setState(s nodeState) {
	n.mu.Lock()
	n.state = s
	n.mu.Unlock()
}

func (n *Node) getState() nodeState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// Live reports whether the node is accepting evaluation work.
func (n *Node) Live() bool { return n.getState() == stateLive }

// reachable nodes answer HTTP at all: live ones serve everything,
// draining ones still serve reads — including cache probes, which is
// what makes drain-rebalancing free for warm keys.
func (n *Node) reachable() bool { return n.getState() != stateDead }

// Partition cuts (true) or heals (false) the network in front of this
// node. See faultsim.FlakyListener.Partition.
func (n *Node) Partition(cut bool) { n.ln.Partition(cut) }

// Fleet is a sharded, replicated cluster of eisvc daemons. Construct
// with New, seed interfaces (SeedInterface / RegisterSource), and front
// it with NewRouter. All membership mutations (AddNode, DrainNode,
// KillNode, ...) are safe for concurrent use with routing.
type Fleet struct {
	cfg Config

	mu     sync.RWMutex // guards ring + nodes map
	ring   *Ring
	nodes  map[string]*Node
	nextID int

	// mutMu serializes registry mutations fleet-wide: one register/rebind
	// at a time flows to the primary and replicates before the next, so
	// every node assigns/observes versions in the same order.
	mutMu sync.Mutex
}

// New starts cfg.Nodes daemons on ephemeral loopback ports and places
// them on the ring. Close the fleet to stop them.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:   cfg,
		ring:  NewRing(cfg.VirtualNodes),
		nodes: map[string]*Node{},
	}
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := f.AddNode(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// startNode boots one daemon on an ephemeral loopback port.
func (f *Fleet) startNode(id string) (*Node, error) {
	ncfg := f.cfg.Node
	ncfg.NodeID = id
	srv := eisvc.NewServer(ncfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: node %s: %w", id, err)
	}
	fl := &faultsim.FlakyListener{Listener: ln, N: f.cfg.FlakyEvery}
	n := &Node{
		ID:     id,
		Server: srv,
		URL:    "http://" + ln.Addr().String(),
		ln:     fl,
		hs:     &http.Server{Handler: srv},
		done:   make(chan struct{}),
	}
	n.peer = eisvc.NewClient(n.URL).TuneTransport(eisvc.TransportTuning{})
	n.peer.ID = "fleet-peer"
	n.peer.Timeout = f.cfg.PeerTimeout
	// Peer probes ride the binary codec: both ends are the same build, and
	// a probe is pure hot path — nothing to debug, everything to shave.
	n.peer.Binary = true
	if !f.cfg.NoPeerForwarding {
		srv.SetPeerLookup(f.peerLookupFor(id))
	}
	if path := f.snapshotPath(id); path != "" {
		// Load errors (missing file, corruption) mean a cold start; the
		// snapshot layer guarantees a rejected file installs nothing.
		_, _, _ = srv.LoadCacheSnapshot(path)
	}
	go func() {
		_ = n.hs.Serve(fl)
		close(n.done)
	}()
	return n, nil
}

// snapshotPath returns node id's snapshot file, or "" when the fleet has
// no snapshot directory configured.
func (f *Fleet) snapshotPath(id string) string {
	if f.cfg.SnapshotDir == "" {
		return ""
	}
	return filepath.Join(f.cfg.SnapshotDir, id+".eisnap")
}

// SaveCacheSnapshots persists every reachable node's caches to the
// fleet's snapshot directory, returning the first error encountered.
func (f *Fleet) SaveCacheSnapshots() error {
	if f.cfg.SnapshotDir == "" {
		return fmt.Errorf("fleet: no SnapshotDir configured")
	}
	var first error
	for _, n := range f.Nodes() {
		if !n.reachable() {
			continue
		}
		if err := n.Server.SaveCacheSnapshot(f.snapshotPath(n.ID)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RestartNode replaces a killed node with a fresh daemon of the same ID
// on a new port: the crash-recovery path. The replacement loads the
// node's persisted cache snapshot (when the fleet has a SnapshotDir),
// pulls the current registry from any reachable peer, and inherits its
// old shards directly — KillNode deliberately leaves the corpse's ring
// points in place so the restart owns exactly what the crash dropped.
func (f *Fleet) RestartNode(id string) (*Node, error) {
	f.mu.RLock()
	old, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fleet: no node %s", id)
	}
	if old.getState() != stateDead {
		return nil, fmt.Errorf("fleet: node %s is not dead", id)
	}
	n, err := f.startNode(id)
	if err != nil {
		return nil, err
	}
	if src := f.anyReachable(); src != nil {
		n.Server.ApplyRegistrySnapshot(src.Server.Registry().Snapshot())
	}
	f.mu.Lock()
	f.nodes[id] = n
	f.ring.Add(id) // idempotent: a no-op here unless the node had been removed
	f.mu.Unlock()
	return n, nil
}

// AddNode boots a fresh daemon, replicates the current registry into it,
// and then joins it to the ring — in that order, so the node never owns
// a shard it cannot serve. The keys that move to it are cold there but
// warm on their previous owners; the peer cache path makes the handoff
// an O(keys-moved) set of sub-millisecond probes instead of a re-trace.
func (f *Fleet) AddNode() (*Node, error) {
	f.mu.Lock()
	f.nextID++
	id := "node-" + strconv.Itoa(f.nextID)
	f.mu.Unlock()

	n, err := f.startNode(id)
	if err != nil {
		return nil, err
	}
	if src := f.anyReachable(); src != nil {
		n.Server.ApplyRegistrySnapshot(src.Server.Registry().Snapshot())
	}
	f.mu.Lock()
	f.nodes[id] = n
	f.ring.Add(id)
	f.mu.Unlock()
	return n, nil
}

// DrainNode removes the node from the ring (its shards re-home to ring
// neighbors immediately) and gracefully drains it: in-flight evaluations
// finish, new evaluation work is shed, but the process stays up and
// keeps answering /v1/cachelookup — donating its warm memo to the nodes
// that inherited its shards until RemoveNode tears it down.
func (f *Fleet) DrainNode(ctx context.Context, id string) error {
	f.mu.Lock()
	n, ok := f.nodes[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("fleet: no node %s", id)
	}
	f.ring.Remove(id)
	f.mu.Unlock()
	n.setState(stateDraining)
	err := n.Server.Drain(ctx)
	if path := f.snapshotPath(id); path != "" {
		// The on-drain snapshot: the drained node's warm memo persists so a
		// later restart (or an operator re-adding the box) starts warm.
		if serr := n.Server.SaveCacheSnapshot(path); err == nil {
			err = serr
		}
	}
	return err
}

// KillNode abruptly stops a node: listener and all connections close
// mid-flight, nothing is drained, and — deliberately — the node stays on
// the ring. Routing discovers the corpse through failed forwards and
// fails over to the replica, which is exactly the fault the replication
// factor exists for.
func (f *Fleet) KillNode(id string) error {
	f.mu.RLock()
	n, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("fleet: no node %s", id)
	}
	n.setState(stateDead)
	err := n.hs.Close()
	<-n.done
	return err
}

// RemoveNode drains the node (bounded by ctx) and then stops it and
// takes it off the ring entirely: the graceful decommission path.
func (f *Fleet) RemoveNode(ctx context.Context, id string) error {
	drainErr := f.DrainNode(ctx, id)
	f.mu.Lock()
	n, ok := f.nodes[id]
	delete(f.nodes, id)
	f.ring.Remove(id)
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: no node %s", id)
	}
	n.setState(stateDead)
	_ = n.hs.Close()
	<-n.done
	return drainErr
}

// PartitionNode cuts (or heals) the network in front of a node without
// stopping it: open connections are severed and new ones dropped, so the
// node looks exactly like a network-partitioned peer — alive, burning
// CPU, unreachable.
func (f *Fleet) PartitionNode(id string, cut bool) error {
	f.mu.RLock()
	n, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("fleet: no node %s", id)
	}
	n.Partition(cut)
	return nil
}

// Node returns a node by ID.
func (f *Fleet) Node(id string) (*Node, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, ok := f.nodes[id]
	return n, ok
}

// Nodes returns all nodes (any state), sorted by ID.
func (f *Fleet) Nodes() []*Node {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LiveNodes returns the nodes currently accepting evaluation work.
func (f *Fleet) LiveNodes() []*Node {
	var out []*Node
	for _, n := range f.Nodes() {
		if n.Live() {
			out = append(out, n)
		}
	}
	return out
}

// OwnersOf returns the ring owners for an interface stack, primary first.
func (f *Fleet) OwnersOf(stack string) []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring.Lookup(stack, f.cfg.Replication)
}

// anyReachable returns some node that answers HTTP, preferring live ones.
func (f *Fleet) anyReachable() *Node {
	var fallback *Node
	for _, n := range f.Nodes() {
		switch n.getState() {
		case stateLive:
			return n
		case stateDraining:
			if fallback == nil {
				fallback = n
			}
		}
	}
	return fallback
}

// primary returns the mutation primary: the lowest-ID live node. Every
// register/rebind funnels through it (under mutMu), so version numbers
// are assigned in one total order and replicate outward.
func (f *Fleet) primary() *Node {
	nodes := f.LiveNodes()
	if len(nodes) == 0 {
		return nil
	}
	return nodes[0]
}

// ReplicateFrom pushes src's registry snapshot to every other reachable
// node. Snapshots share interface pointers (core.Interface is immutable
// after registration), so replication is O(entries), not O(tree).
func (f *Fleet) ReplicateFrom(src *Node) {
	snap := src.Server.Registry().Snapshot()
	for _, n := range f.Nodes() {
		if n.ID != src.ID && n.reachable() {
			n.Server.ApplyRegistrySnapshot(snap)
		}
	}
}

// SeedInterface registers a natively-built interface on the primary and
// replicates it fleet-wide — how calibrated hardware stacks (which hold
// Go closures and cannot travel as EIL source) enter the fleet.
func (f *Fleet) SeedInterface(name string, iface *core.Interface) error {
	f.mutMu.Lock()
	defer f.mutMu.Unlock()
	p := f.primary()
	if p == nil {
		return fmt.Errorf("fleet: no live nodes")
	}
	if _, err := p.Server.Registry().RegisterInterface(name, iface); err != nil {
		return err
	}
	f.ReplicateFrom(p)
	return nil
}

// RegisterSource compiles EIL source on the primary and replicates the
// declared interfaces fleet-wide, returning their names.
func (f *Fleet) RegisterSource(src string) ([]string, error) {
	f.mutMu.Lock()
	defer f.mutMu.Unlock()
	p := f.primary()
	if p == nil {
		return nil, fmt.Errorf("fleet: no live nodes")
	}
	names, err := p.Server.Registry().RegisterSource(src)
	if err != nil {
		return nil, err
	}
	f.ReplicateFrom(p)
	return names, nil
}

// Close stops every node abruptly. The fleet is unusable afterwards.
func (f *Fleet) Close() {
	f.mu.Lock()
	nodes := make([]*Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		nodes = append(nodes, n)
	}
	f.nodes = map[string]*Node{}
	f.ring = NewRing(f.cfg.VirtualNodes)
	f.mu.Unlock()
	for _, n := range nodes {
		n.setState(stateDead)
		_ = n.hs.Close()
		<-n.done
	}
}

// peerLookupFor builds node id's fleet-cache hook: on a local memo miss,
// probe the stack's other ring owners first (they are where the key is
// warm by construction), then any other reachable node (which is where
// warm entries live right after a drain or membership change). First hit
// wins; every probe is bounded by PeerTimeout, so a dead or partitioned
// peer costs one short timeout, not a stall.
func (f *Fleet) peerLookupFor(id string) eisvc.PeerLookup {
	return func(ctx context.Context, key string) (energy.Dist, bool) {
		stack := eisvc.KeyStack(key)
		f.mu.RLock()
		owners := f.ring.Lookup(stack, f.cfg.Replication)
		f.mu.RUnlock()
		probed := map[string]bool{id: true}
		for _, owner := range owners {
			if probed[owner] {
				continue
			}
			probed[owner] = true
			if d, ok := f.probe(ctx, owner, key); ok {
				return d, true
			}
		}
		for _, n := range f.Nodes() {
			if probed[n.ID] {
				continue
			}
			if d, ok := f.probe(ctx, n.ID, key); ok {
				return d, true
			}
		}
		return energy.Dist{}, false
	}
}

// probe asks one node for a memoized answer; all failures are misses.
func (f *Fleet) probe(ctx context.Context, id, key string) (energy.Dist, bool) {
	f.mu.RLock()
	n, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok || !n.reachable() {
		return energy.Dist{}, false
	}
	cctx, cancel := context.WithTimeout(ctx, f.cfg.PeerTimeout)
	defer cancel()
	d, hit, err := n.peer.CacheLookupCtx(cctx, key)
	if err != nil || !hit {
		return energy.Dist{}, false
	}
	return d, true
}
