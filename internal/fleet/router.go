package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"energyclarity/internal/eisvc"
)

// Router fronts a Fleet with the same wire API as a single daemon, so
// every eisvc.Client works against a fleet unchanged. Evaluations route
// to their stack's ring owners (spread across replicas by a request
// hash, so identical hot keys still fan over R nodes); a dead, draining,
// or shedding owner fails over to the next replica and then to any live
// node — correctness never depends on placement, because the replicated
// registry means every node can evaluate every stack; the ring only
// decides where caches get warm. Registry mutations serialize through
// the fleet primary and replicate before the response returns.
type Router struct {
	f   *Fleet
	fwd *http.Client
	aff *affinity

	routed       atomic.Uint64 // evaluation requests routed
	failovers    atomic.Uint64 // candidates skipped after a failure
	exhausted    atomic.Uint64 // requests no candidate could serve
	affinityHits atomic.Uint64 // evals steered to their last-serving node
}

// NewRouter returns a router over the fleet.
func NewRouter(f *Fleet) *Router {
	return &Router{
		f: f,
		// One pooled transport serves all nodes; MaxIdleConnsPerHost is the
		// satellite tuning that keeps fan-out off the dialer's hot path.
		fwd: &http.Client{Transport: eisvc.NewTransport(eisvc.TransportTuning{})},
		aff: newAffinity(0),
	}
}

// RouterCounters is a snapshot of the router's routing counters.
type RouterCounters struct {
	Routed       uint64
	Failovers    uint64
	Exhausted    uint64
	AffinityHits uint64
}

// Counters returns the router's routing counters.
func (rt *Router) Counters() RouterCounters {
	return RouterCounters{
		Routed:       rt.routed.Load(),
		Failovers:    rt.failovers.Load(),
		Exhausted:    rt.exhausted.Load(),
		AffinityHits: rt.affinityHits.Load(),
	}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/eval":
		rt.handleEval(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/evalbatch":
		rt.handleEvalBatch(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/optimize":
		rt.handleOptimize(w, r)
	case r.Method == http.MethodPost && (r.URL.Path == "/v1/register" || r.URL.Path == "/v1/rebind"):
		rt.handleMutate(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/v1/stats":
		rt.handleStats(w, r)
	default:
		// Reads (healthz, interfaces, drift, cachelookup, ...) are served
		// identically by every node thanks to registry replication.
		rt.forwardToAnyLive(w, r)
	}
}

// --- forwarding machinery ---

// forward replays one request body to a node and returns the raw
// response. The inbound request's identity and resilience headers ride
// along so the serving node's ledger and stats attribute correctly.
func (rt *Router) forward(ctx context.Context, n *Node, r *http.Request, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, n.URL+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", "X-Eisvc-Client", "X-Eisvc-Attempt", "X-Eisvc-Hedge"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return rt.fwd.Do(req)
}

// relay copies a node's response to the client verbatim (plus the
// X-Eisvc-Node attribution the node stamped).
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Eisvc-Node", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// shedFailover reports whether a response should push the router to the
// next candidate: the node refused under load (429), or is draining or
// otherwise unavailable (503). Other statuses — including request errors
// like 400/404/422 — are the answer; every node would say the same.
func shedFailover(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// tryCandidates forwards body to each candidate in order until one
// yields a non-shed response; onServed (optional) learns which node
// answered before the response relays. It returns false when every
// candidate failed at the transport level or shed.
func (rt *Router) tryCandidates(w http.ResponseWriter, r *http.Request, body []byte, candidates []*Node, onServed func(n *Node)) bool {
	for i, n := range candidates {
		if i > 0 {
			rt.failovers.Add(1)
		}
		resp, err := rt.forward(r.Context(), n, r, body)
		if err != nil {
			continue // dead or partitioned node: next candidate
		}
		if shedFailover(resp.StatusCode) && i < len(candidates)-1 {
			resp.Body.Close()
			continue
		}
		if onServed != nil && resp.StatusCode/100 == 2 {
			onServed(n)
		}
		relay(w, resp)
		return true
	}
	return false
}

// writeExhausted answers when no node could serve. Deliberately a 503
// with no Retry-After: a retrying client applies its own short backoff
// instead of a server-imposed full-second sleep, which matters when the
// fleet is healing (a kill's replacement replica warms in milliseconds).
func (rt *Router) writeExhausted(w http.ResponseWriter, what string) {
	rt.exhausted.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(eisvc.ErrorResponse{Error: "fleet: no node could serve " + what})
}

// candidatesFor orders the nodes to try for one evaluation: the stack's
// ring owners first — rotated by the request hash, so a hot stack's
// traffic spreads over all R replicas instead of hammering the primary —
// then every other live node as a last resort.
func (rt *Router) candidatesFor(stack string, spread uint64) []*Node {
	owners := rt.f.OwnersOf(stack)
	var out []*Node
	seen := map[string]bool{}
	if len(owners) > 0 {
		rot := int(spread % uint64(len(owners)))
		for i := range owners {
			id := owners[(rot+i)%len(owners)]
			if n, ok := rt.f.Node(id); ok && n.Live() {
				seen[id] = true
				out = append(out, n)
			}
		}
	}
	for _, n := range rt.f.LiveNodes() {
		if !seen[n.ID] {
			out = append(out, n)
		}
	}
	return out
}

// spreadHash fingerprints one evaluation request so repeated identical
// requests land on the same replica (maximizing memo locality) while
// distinct requests for the same stack spread across its owners.
func spreadHash(req *eisvc.EvalRequest) uint64 {
	var b bytes.Buffer
	b.WriteString(req.Method)
	b.WriteByte('|')
	b.WriteString(req.Mode)
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(req.Seed, 10))
	b.WriteByte('|')
	// encoding/json sorts map keys, so identical args marshal identically.
	if raw, err := json.Marshal(req.Args); err == nil {
		b.Write(raw)
	}
	if len(req.Fixed) > 0 {
		if raw, err := json.Marshal(req.Fixed); err == nil {
			b.Write(raw)
		}
	}
	return hash64(b.String())
}

// --- handlers ---

func (rt *Router) handleEval(w http.ResponseWriter, r *http.Request) {
	rt.routed.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.badRequest(w, "read body: %v", err)
		return
	}
	// Binary bodies route without re-encoding: decode once for placement,
	// then forward the client's exact bytes. The decoded request carries
	// the same Go value shapes as a JSON decode, so spreadHash agrees
	// across codecs and a mixed JSON/binary client population still lands
	// identical requests on the same replica.
	var req eisvc.EvalRequest
	if eisvc.IsBinaryContentType(r.Header.Get("Content-Type")) {
		rq, err := eisvc.DecodeEvalRequest(body)
		if err != nil {
			rt.badRequest(w, "bad binary request body: %v", err)
			return
		}
		req = *rq
	} else if err := json.Unmarshal(body, &req); err != nil {
		rt.badRequest(w, "bad request body: %v", err)
		return
	}

	rt.routeAffine(w, r, body, req.Interface, spreadHash(&req), "eval of "+req.Interface)
}

// routeAffine forwards one request whose answer benefits from memo
// locality: the stack's ring owners rotated by the request fingerprint,
// except that the node which last served this exact fingerprint — its
// memo is warm — goes first regardless of ring order. Failover follows
// the usual candidate walk.
func (rt *Router) routeAffine(w http.ResponseWriter, r *http.Request, body []byte, stack string, spread uint64, what string) {
	cands := rt.candidatesFor(stack, spread)
	affKey := hash64(stack) ^ spread
	affID, affKnown := rt.aff.get(affKey)
	if affKnown {
		for i, n := range cands {
			if n.ID == affID {
				if i > 0 {
					copy(cands[1:i+1], cands[0:i])
					cands[0] = n
				}
				break
			}
		}
	}
	ok := rt.tryCandidates(w, r, body, cands, func(n *Node) {
		if affKnown && n.ID == affID {
			rt.affinityHits.Add(1)
		}
		rt.aff.put(affKey, n.ID)
	})
	if !ok {
		rt.writeExhausted(w, what)
	}
}

// handleOptimize routes a whole auto-optimizer sweep to one node — the
// stack's owner under the sweep fingerprint — so a repeat sweep lands
// where its per-evaluation memos are warm. A dead or shedding owner
// fails over like an eval; sweeps are deterministic, so the failover
// node fits a bit-identical frontier (a cold cache costs time, never
// correctness).
func (rt *Router) handleOptimize(w http.ResponseWriter, r *http.Request) {
	rt.routed.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.badRequest(w, "read body: %v", err)
		return
	}
	var req eisvc.OptimizeRequest
	if eisvc.IsBinaryContentType(r.Header.Get("Content-Type")) {
		rq, err := eisvc.DecodeOptimizeRequest(body)
		if err != nil {
			rt.badRequest(w, "bad binary request body: %v", err)
			return
		}
		req = *rq
	} else if err := json.Unmarshal(body, &req); err != nil {
		rt.badRequest(w, "bad request body: %v", err)
		return
	}
	rt.routeAffine(w, r, body, req.Interface, optimizeSpread(&req), "optimize of "+req.Interface)
}

// optimizeSpread fingerprints a sweep the way spreadHash fingerprints
// an eval: identical sweeps land on the same replica, distinct sweeps
// over the same stack spread across its owners. The binary decoder
// yields the same field values as a JSON decode, so codecs agree.
func optimizeSpread(req *eisvc.OptimizeRequest) uint64 {
	var b bytes.Buffer
	b.WriteString(req.EnergyMethod)
	b.WriteByte('|')
	b.WriteString(req.LatencyMethod)
	b.WriteByte('|')
	b.WriteString(req.Mode)
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(req.Seed, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(req.SLOMs, 'g', -1, 64))
	if raw, err := json.Marshal(req.Knobs); err == nil {
		b.Write(raw)
	}
	return hash64(b.String())
}

// handleEvalBatch splits a batch by each item's preferred node and
// forwards the sub-batches concurrently, stitching results back in
// request order. A sub-batch whose preferred node fails retries on the
// shared candidate list, so a mid-batch node kill surfaces as latency,
// not errors.
func (rt *Router) handleEvalBatch(w http.ResponseWriter, r *http.Request) {
	rt.routed.Add(1)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		rt.badRequest(w, "read body: %v", err)
		return
	}
	// Sub-batches re-encode in the inbound codec, so binary clients stay
	// binary hop to hop and JSON clients stay debuggable end to end.
	binary := eisvc.IsBinaryContentType(r.Header.Get("Content-Type"))
	var req eisvc.BatchEvalRequest
	if binary {
		rq, err := eisvc.DecodeBatchEvalRequest(raw)
		if err != nil {
			rt.badRequest(w, "bad binary request body: %v", err)
			return
		}
		req = *rq
	} else if err := json.Unmarshal(raw, &req); err != nil {
		rt.badRequest(w, "bad request body: %v", err)
		return
	}
	if len(req.Requests) == 0 {
		rt.badRequest(w, "empty batch")
		return
	}

	// Group item indices by preferred node ID. Items for unknown stacks or
	// an empty ring fall into the "" group and ride with any live node.
	groups := map[string][]int{}
	for i := range req.Requests {
		it := &req.Requests[i]
		pref := ""
		if owners := rt.f.OwnersOf(it.Interface); len(owners) > 0 {
			pref = owners[spreadHash(it)%uint64(len(owners))]
		}
		groups[pref] = append(groups[pref], i)
	}

	results := make([]eisvc.BatchEvalItem, len(req.Requests))
	var wg sync.WaitGroup
	for pref, idxs := range groups {
		wg.Add(1)
		go func(pref string, idxs []int) {
			defer wg.Done()
			sub := eisvc.BatchEvalRequest{Requests: make([]eisvc.EvalRequest, len(idxs))}
			for j, i := range idxs {
				sub.Requests[j] = req.Requests[i]
			}
			var body []byte
			if binary {
				buf := eisvc.GetBuffer()
				defer eisvc.PutBuffer(buf)
				if err := eisvc.EncodeBatchEvalRequest(buf, &sub); err != nil {
					rt.failGroup(results, idxs, &req, "encode sub-batch: "+err.Error())
					return
				}
				body = buf.Bytes()
			} else {
				b, err := json.Marshal(sub)
				if err != nil {
					rt.failGroup(results, idxs, &req, "marshal sub-batch: "+err.Error())
					return
				}
				body = b
			}
			items, ok := rt.forwardBatch(r, pref, body, len(idxs))
			if !ok {
				rt.exhausted.Add(1)
				rt.failGroup(results, idxs, &req, "fleet: no node could serve batch")
				return
			}
			for j, i := range idxs {
				results[i] = items[j]
			}
		}(pref, idxs)
	}
	wg.Wait()
	out := eisvc.BatchEvalResponse{Results: results}
	if eisvc.IsBinaryContentType(r.Header.Get("Accept")) {
		buf := eisvc.GetBuffer()
		defer eisvc.PutBuffer(buf)
		if err := eisvc.EncodeBatchEvalResponse(buf, &out); err == nil {
			w.Header().Set("Content-Type", eisvc.BinaryContentType)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(buf.Bytes())
			return
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// forwardBatch sends one sub-batch to its preferred node, failing over
// to every other live node. It returns ok=false when no node answered.
func (rt *Router) forwardBatch(r *http.Request, pref string, body []byte, want int) ([]eisvc.BatchEvalItem, bool) {
	var candidates []*Node
	seen := map[string]bool{}
	if n, ok := rt.f.Node(pref); ok && n.Live() {
		candidates = append(candidates, n)
		seen[pref] = true
	}
	for _, n := range rt.f.LiveNodes() {
		if !seen[n.ID] {
			candidates = append(candidates, n)
		}
	}
	for i, n := range candidates {
		if i > 0 {
			rt.failovers.Add(1)
		}
		resp, err := rt.forward(r.Context(), n, r, body)
		if err != nil {
			continue
		}
		if shedFailover(resp.StatusCode) {
			resp.Body.Close()
			continue
		}
		data, err := io.ReadAll(resp.Body)
		ctype := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if err != nil || resp.StatusCode/100 != 2 {
			continue
		}
		var out eisvc.BatchEvalResponse
		if eisvc.IsBinaryContentType(ctype) {
			dec, err := eisvc.DecodeBatchEvalResponse(data)
			if err != nil {
				continue
			}
			out = *dec
		} else if json.Unmarshal(data, &out) != nil {
			continue
		}
		if len(out.Results) != want {
			continue
		}
		return out.Results, true
	}
	return nil, false
}

// failGroup marks every item of a failed sub-batch as 503 so callers can
// retry item-by-item.
func (rt *Router) failGroup(results []eisvc.BatchEvalItem, idxs []int, req *eisvc.BatchEvalRequest, msg string) {
	for _, i := range idxs {
		results[i] = eisvc.BatchEvalItem{
			Interface: req.Requests[i].Interface,
			Method:    req.Requests[i].Method,
			Status:    http.StatusServiceUnavailable,
			Error:     msg,
		}
	}
}

// handleMutate serializes a register/rebind through the fleet primary
// and replicates the resulting registry snapshot to every node before
// answering, so a client that mutates and immediately evaluates sees its
// write no matter which node the evaluation routes to.
func (rt *Router) handleMutate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.badRequest(w, "read body: %v", err)
		return
	}
	rt.f.mutMu.Lock()
	defer rt.f.mutMu.Unlock()
	p := rt.f.primary()
	if p == nil {
		rt.writeExhausted(w, r.URL.Path)
		return
	}
	resp, err := rt.forward(r.Context(), p, r, body)
	if err != nil {
		rt.writeExhausted(w, r.URL.Path)
		return
	}
	if resp.StatusCode/100 == 2 {
		rt.f.ReplicateFrom(p)
	}
	relay(w, resp)
}

// forwardToAnyLive serves reads: any live node answers identically.
func (rt *Router) forwardToAnyLive(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			rt.badRequest(w, "read body: %v", err)
			return
		}
		body = b
	}
	for _, n := range rt.f.LiveNodes() {
		resp, err := rt.forward(r.Context(), n, r, body)
		if err != nil {
			rt.failovers.Add(1)
			continue
		}
		relay(w, resp)
		return
	}
	rt.writeExhausted(w, r.URL.Path)
}

func (rt *Router) badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, eisvc.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// --- fleet stats ---

// FleetStats is the router's /v1/stats payload: cluster shape, routing
// counters, a fleet-wide aggregate, and each reachable node's own stats
// keyed by node ID.
type FleetStats struct {
	Nodes       int `json:"nodes"`
	LiveNodes   int `json:"live_nodes"`
	Replication int `json:"replication"`

	Routed       uint64 `json:"routed"`
	Failovers    uint64 `json:"failovers"`
	Exhausted    uint64 `json:"exhausted"`
	AffinityHits uint64 `json:"affinity_hits"`

	Aggregate eisvc.StatsResponse             `json:"aggregate"`
	PerNode   map[string]*eisvc.StatsResponse `json:"per_node"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats(r.Context()))
}

// Stats gathers per-node stats and folds them into a fleet aggregate.
// Unreachable nodes are skipped (they still count in Nodes).
func (rt *Router) Stats(ctx context.Context) *FleetStats {
	nodes := rt.f.Nodes()
	c := rt.Counters()
	fs := &FleetStats{
		Nodes:        len(nodes),
		Replication:  rt.f.cfg.Replication,
		Routed:       c.Routed,
		Failovers:    c.Failovers,
		Exhausted:    c.Exhausted,
		AffinityHits: c.AffinityHits,
		PerNode:      map[string]*eisvc.StatsResponse{},
	}
	var latWeighted float64
	for _, n := range nodes {
		if n.Live() {
			fs.LiveNodes++
		}
		if !n.reachable() {
			continue
		}
		st, err := n.peer.StatsCtx(ctx)
		if err != nil {
			continue
		}
		fs.PerNode[n.ID] = st
		agg := &fs.Aggregate
		if st.Interfaces > agg.Interfaces {
			agg.Interfaces = st.Interfaces
		}
		agg.EvalRequests += st.EvalRequests
		agg.Evaluations += st.Evaluations
		agg.MemoHits += st.MemoHits
		agg.MemoMisses += st.MemoMisses
		agg.MemoEvictions += st.MemoEvictions
		agg.MemoLen += st.MemoLen
		agg.Coalesced += st.Coalesced
		agg.BatchRequests += st.BatchRequests
		agg.BatchItems += st.BatchItems
		agg.OptimizeRequests += st.OptimizeRequests
		agg.OptimizeEvals += st.OptimizeEvals
		agg.OptimizeMemoServed += st.OptimizeMemoServed
		agg.PeerHits += st.PeerHits
		agg.PeerMisses += st.PeerMisses
		agg.PeerServed += st.PeerServed
		agg.PeerServedHits += st.PeerServedHits
		agg.LayerEnabled = agg.LayerEnabled || st.LayerEnabled
		agg.LayerHits += st.LayerHits
		agg.LayerMisses += st.LayerMisses
		agg.LayerEvictions += st.LayerEvictions
		agg.LayerLen += st.LayerLen
		agg.LayerInvalidations += st.LayerInvalidations
		agg.ShedQueueFull += st.ShedQueueFull
		agg.ShedDeadline += st.ShedDeadline
		agg.ShedDraining += st.ShedDraining
		agg.QueueDepth += st.QueueDepth
		if st.PeakQueue > agg.PeakQueue {
			agg.PeakQueue = st.PeakQueue
		}
		agg.Workers += st.Workers
		agg.QueueLimit += st.QueueLimit
		agg.InFlight += st.InFlight
		agg.RetriedRequests += st.RetriedRequests
		agg.RetryAttempts += st.RetryAttempts
		agg.HedgedRequests += st.HedgedRequests
		agg.AttribJ += st.AttribJ
		agg.AttribP99J += st.AttribP99J
		agg.Latency.Count += st.Latency.Count
		latWeighted += st.Latency.MeanMs * float64(st.Latency.Count)
		if st.Latency.P50Ms > agg.Latency.P50Ms {
			agg.Latency.P50Ms = st.Latency.P50Ms
		}
		if st.Latency.P99Ms > agg.Latency.P99Ms {
			agg.Latency.P99Ms = st.Latency.P99Ms
		}
		if st.Latency.MaxMs > agg.Latency.MaxMs {
			agg.Latency.MaxMs = st.Latency.MaxMs
		}
	}
	if fs.Aggregate.Latency.Count > 0 {
		fs.Aggregate.Latency.MeanMs = latWeighted / float64(fs.Aggregate.Latency.Count)
	}
	if total := fs.Aggregate.MemoHits + fs.Aggregate.MemoMisses; total > 0 {
		fs.Aggregate.MemoHitRate = float64(fs.Aggregate.MemoHits) / float64(total)
	}
	if total := fs.Aggregate.LayerHits + fs.Aggregate.LayerMisses; total > 0 {
		fs.Aggregate.LayerHitRate = float64(fs.Aggregate.LayerHits) / float64(total)
	}
	return fs
}

// StartRouter listens on addr ("" means an ephemeral loopback port) and
// serves a new router for the fleet. It returns the router (for
// counters/stats), its base URL, and a shutdown func.
func (f *Fleet) StartRouter(addr string) (*Router, string, func(), error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", nil, fmt.Errorf("fleet: router: %w", err)
	}
	rt := NewRouter(f)
	hs := &http.Server{Handler: rt}
	done := make(chan struct{})
	go func() {
		_ = hs.Serve(ln)
		close(done)
	}()
	shutdown := func() {
		_ = hs.Close()
		<-done
	}
	return rt, "http://" + ln.Addr().String(), shutdown, nil
}
