package fleet

import (
	"fmt"
	"testing"
)

func ringOf(n int) *Ring {
	r := NewRing(0)
	for i := 1; i <= n; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	return r
}

// TestRingLookupDeterministic: same membership, same answer, distinct
// owners, primary-first ordering stable across instances.
func TestRingLookupDeterministic(t *testing.T) {
	a, b := ringOf(8), ringOf(8)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("stack-%d", i)
		oa, ob := a.Lookup(key, 3), b.Lookup(key, 3)
		if len(oa) != 3 {
			t.Fatalf("%s: %d owners, want 3", key, len(oa))
		}
		seen := map[string]bool{}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("%s: rings disagree: %v vs %v", key, oa, ob)
			}
			if seen[oa[j]] {
				t.Fatalf("%s: duplicate owner in %v", key, oa)
			}
			seen[oa[j]] = true
		}
		if a.Owner(key) != oa[0] {
			t.Fatalf("%s: Owner %q != Lookup[0] %q", key, a.Owner(key), oa[0])
		}
	}
}

// TestRingSmall: n larger than the ring returns every node; empty ring
// returns nothing.
func TestRingSmall(t *testing.T) {
	r := ringOf(2)
	if got := r.Lookup("k", 5); len(got) != 2 {
		t.Fatalf("Lookup on 2-node ring returned %v, want both nodes", got)
	}
	if got := NewRing(0).Lookup("k", 2); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
	if NewRing(0).Owner("k") != "" {
		t.Fatal("empty ring has an owner")
	}
}

// TestRingBalance: with virtual nodes, 2000 keys over 8 nodes spread
// within a sane band (no node starved, none hot-spotted).
func TestRingBalance(t *testing.T) {
	r := ringOf(8)
	counts := map[string]int{}
	const keys = 2000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("stack-%d", i))]++
	}
	want := keys / 8
	for node, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("%s owns %d keys, want within [%d, %d]", node, c, want/3, want*3)
		}
	}
	if len(counts) != 8 {
		t.Errorf("only %d nodes own keys, want all 8", len(counts))
	}
}

// TestRingMinimalMovement is consistent hashing's point: adding a ninth
// node re-homes roughly 1/9 of the keys and never shuffles the rest.
func TestRingMinimalMovement(t *testing.T) {
	r := ringOf(8)
	const keys = 2000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("stack-%d", i))
	}
	r.Add("node-9")
	moved := 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("stack-%d", i))
		if after != before[i] {
			if after != "node-9" {
				t.Fatalf("stack-%d moved %s -> %s, not to the new node", i, before[i], after)
			}
			moved++
		}
	}
	if moved == 0 || moved > keys/3 {
		t.Errorf("add moved %d/%d keys, want ~%d", moved, keys, keys/9)
	}

	// Removing it moves exactly those keys back.
	r.Remove("node-9")
	for i := range before {
		if got := r.Owner(fmt.Sprintf("stack-%d", i)); got != before[i] {
			t.Fatalf("stack-%d settled on %s after remove, want %s", i, got, before[i])
		}
	}
}

// TestRingMembership: Add/Remove idempotence and bookkeeping.
func TestRingMembership(t *testing.T) {
	r := NewRing(16)
	r.Add("a")
	r.Add("a")
	r.Add("b")
	if r.Len() != 2 || !r.Has("a") || !r.Has("b") {
		t.Fatalf("len=%d has(a)=%v has(b)=%v", r.Len(), r.Has("a"), r.Has("b"))
	}
	if len(r.points) != 32 {
		t.Fatalf("%d ring points, want 32 (double-add leaked)", len(r.points))
	}
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 1 || r.Has("a") {
		t.Fatalf("after remove: len=%d has(a)=%v", r.Len(), r.Has("a"))
	}
	if got := r.Nodes(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Nodes() = %v, want [b]", got)
	}
}
