package fleet

import "sync"

// affinity remembers which node last served each evaluation fingerprint
// from its memo, so the router can aim the next identical request at the
// replica that is already warm. Ring placement decides where a key
// *should* live, but failovers, sheds, and spread rotation mean the
// actual warm copy can sit on any replica — recording the last hit turns
// the second request into a guaranteed memo hit instead of a fresh miss
// on a colder sibling.
//
// The map is bounded with two generations: writes fill cur, and when cur
// reaches capacity it rotates into prev and starts empty. Reads consult
// both. The effect is an LRU-ish bound with O(1) operations and no
// per-entry bookkeeping — at most 2×cap entries live, and an entry
// survives at least one full generation of distinct keys before
// eviction.
type affinity struct {
	mu   sync.Mutex
	cap  int
	cur  map[uint64]string
	prev map[uint64]string
}

// defaultAffinityCap bounds one generation of the router's affinity map.
// 4096 entries × ~24 bytes is ~100 KB per generation — noise next to the
// memo caches it protects.
const defaultAffinityCap = 4096

func newAffinity(capacity int) *affinity {
	if capacity <= 0 {
		capacity = defaultAffinityCap
	}
	return &affinity{cap: capacity, cur: make(map[uint64]string)}
}

// get returns the node that last memo-served this fingerprint, if known.
func (a *affinity) get(key uint64) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id, ok := a.cur[key]; ok {
		return id, true
	}
	id, ok := a.prev[key]
	return id, ok
}

// put records a memo hit for the fingerprint, rotating generations when
// the current one is full.
func (a *affinity) put(key uint64, nodeID string) {
	if nodeID == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.cur[key]; !ok && len(a.cur) >= a.cap {
		a.prev = a.cur
		a.cur = make(map[uint64]string, a.cap/4)
	}
	a.cur[key] = nodeID
}

// forget drops a fingerprint (used when its recorded node stops serving).
func (a *affinity) forget(key uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.cur, key)
	delete(a.prev, key)
}
