package fleet

import (
	"fmt"
	"testing"

	"energyclarity/internal/eisvc"
)

// TestFleetBinaryRoutingAndAffinity: a binary client's requests route
// through the fleet byte-for-byte identically to a JSON client's, and
// repeating a request steers it back to the node that served it last
// (the memo-affinity hint), so the repeat is a memo hit.
func TestFleetBinaryRoutingAndAffinity(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	rt, jsonC := startTestRouter(t, f)
	if _, err := jsonC.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}
	binC := eisvc.NewClient(jsonC.Base()).TuneTransport(eisvc.TransportTuning{})
	binC.ID = "fleet-bin"
	binC.Binary = true

	want := refDists(t, 4)
	for k := 0; k < 4; k++ {
		jd, jresp, err := jsonC.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("json class %d", k), jd, want[k])
		bd, bresp, err := binC.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("binary class %d", k), bd, want[k])
		// The binary repeat of the JSON request must land on the same node
		// (affinity) and be served from its memo, not re-evaluated.
		if !bresp.Cached {
			t.Errorf("class %d: binary repeat was not cache-served", k)
		}
		if bresp.Node != jresp.Node {
			t.Errorf("class %d: binary repeat served by %s, want %s (affinity)", k, bresp.Node, jresp.Node)
		}
	}
	if c := rt.Counters(); c.AffinityHits < 4 {
		t.Errorf("affinity hits = %d, want >= 4", c.AffinityHits)
	}

	// Batches through the binary codec answer bit-identically too.
	reqs := make([]eisvc.EvalRequest, 4)
	for k := range reqs {
		reqs[k] = binC.EvalRequestFor("ml_webservice", "handle", traceArgs(k), traceOpts)
	}
	items, err := binC.EvalBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for k, it := range items {
		if it.Error != "" {
			t.Fatalf("batch item %d: %s", k, it.Error)
		}
		d, err := it.Dist.Dist()
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("binary batch %d", k), d, want[k])
	}
}

// TestFleetRestartFromSnapshot: kill a warm node, restart it, and its
// memo comes back from the snapshot file — the warm trace replays
// entirely cache-served, bit-identical, with zero new evaluations.
func TestFleetRestartFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	f := startFleet(t, Config{Nodes: 3, SnapshotDir: dir})
	_, c := startTestRouter(t, f)
	if _, err := c.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}

	const distinct = 6
	want := refDists(t, distinct)
	served := make([]string, distinct)
	for k := 0; k < distinct; k++ {
		d, resp, err := c.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("warmup %d", k), d, want[k])
		served[k] = resp.Node
	}
	if err := f.SaveCacheSnapshots(); err != nil {
		t.Fatal(err)
	}

	victim := served[0]
	if victim == "" {
		t.Fatal("no node attribution on warmup")
	}
	if err := f.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RestartNode(victim); err != nil {
		t.Fatal(err)
	}
	n, _ := f.Node(victim)
	st, err := n.peer.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemoLen == 0 {
		t.Fatal("restarted node's memo is empty — snapshot did not load")
	}

	evalsBefore := totalEvaluations(t, f)
	for k := 0; k < distinct; k++ {
		d, resp, err := c.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("replay %d", k), d, want[k])
		if !resp.Cached {
			t.Errorf("replay %d: not cache-served after restart", k)
		}
	}
	if after := totalEvaluations(t, f); after != evalsBefore {
		t.Errorf("replay re-evaluated: %d -> %d evaluations", evalsBefore, after)
	}
}

// totalEvaluations sums actual evaluation work across reachable nodes.
func totalEvaluations(t *testing.T, f *Fleet) uint64 {
	t.Helper()
	var total uint64
	for _, n := range f.Nodes() {
		if !n.reachable() {
			continue
		}
		st, err := n.peer.Stats()
		if err != nil {
			t.Fatal(err)
		}
		total += st.Evaluations
	}
	return total
}
