// Package fleet turns N eisvc daemons into one sharded, replicated
// serving cluster: a consistent-hash ring assigns interface stacks to
// nodes, a router fronts the fleet with the same wire API as a single
// daemon, the versioned registry replicates via snapshots piggybacked on
// register/rebind, and memo misses forward peer-to-peer so one node's
// warm cache serves the whole fleet. See docs/FLEET.md.
package fleet

import (
	"sort"
	"strconv"
)

// DefaultVirtualNodes is how many ring points each node projects. More
// points smooth the shard distribution (stddev of load shrinks roughly
// with 1/sqrt(vnodes)) at the cost of a larger sorted ring.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over node IDs. Keys (interface-stack
// names) hash onto a circle; a key's owners are the first R distinct
// nodes clockwise from its hash point. Adding or removing one node moves
// only the keys adjacent to its points — the property that makes
// join/drain rebalancing cheap.
//
// Ring is not safe for concurrent mutation; the Fleet serializes access.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given points per node
// (<= 0 means DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]bool{}}
}

// hash64 is FNV-1a with a splitmix64 finalizer. FNV alone clusters badly
// for short suffix-varying strings (node-1#0, node-1#1, ...); the
// finalizer's avalanche spreads the points uniformly around the circle.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a node's virtual points. Adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's points. Removing an unknown node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether the node is on the ring.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the ring's node IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the first n distinct nodes clockwise from key's hash
// point: the key's owner (first) and its replicas. When the ring holds
// fewer than n nodes, every node is returned. The order is deterministic
// for a given ring membership, so every router instance agrees on owners
// without coordination.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owner returns the key's primary owner ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	owners := r.Lookup(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}
