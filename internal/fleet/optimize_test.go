package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"energyclarity/internal/eisvc"
	"energyclarity/internal/faultsim"
)

// optFleetEIL trades energy for latency over two knobs; the inner loop
// makes each evaluation cost real work so a sweep is reliably still in
// flight when the test kills its serving node.
const optFleetEIL = `
interface opt_service {
  ecv jitter: choice { 1: 0.5, 1.2: 0.3, 1.6: 0.2 }
  func work(batch, level) {
    let acc = 0
    for i in 0 .. 4000 {
      acc = acc + (batch + i) % 7 + level
    }
    return acc
  }
  func energy(batch, level) { return (10nJ + 3nJ * (level + 1) * batch) * jitter + 0nJ * work(batch, level) }
  func latency(batch, level) { return (8 / (1 + level) + 0.5 * batch) * jitter + 0 * work(batch, level) }
}
`

func fleetOptRequest() eisvc.OptimizeRequest {
	return eisvc.OptimizeRequest{
		Interface:     "opt_service",
		EnergyMethod:  "energy",
		LatencyMethod: "latency",
		Knobs: []eisvc.OptimizeKnob{
			{Name: "batch", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
			{Name: "level", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}},
		},
		SLOMs: 9,
		// One evaluation at a time: the cold sweep takes long enough
		// that the mid-sweep kill lands while it is genuinely in flight.
		Parallelism: 1,
	}
}

// TestFleetOptimizeKillMidSweep is the resilience gate for the
// auto-optimizer: a sweep whose serving node dies mid-flight must land
// anyway (router failover walks to a live replica; the client's
// idempotent retry backstops it) with a frontier bit-identical to a
// clean sweep on the surviving nodes.
func TestFleetOptimizeKillMidSweep(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	rt, c := startTestRouter(t, f)
	c.Retry = eisvc.DefaultRetryPolicy()
	if _, err := c.Register(optFleetEIL); err != nil {
		t.Fatal(err)
	}

	// Predict placement the way the router will: the first live
	// candidate under the sweep fingerprint serves the sweep.
	req := fleetOptRequest()
	cands := rt.candidatesFor(req.Interface, optimizeSpread(&req))
	if len(cands) < 3 {
		t.Fatalf("want 3 candidates, got %d", len(cands))
	}
	victim := cands[0].ID

	var res *eisvc.OptimizeResponse
	var sweepErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, sweepErr = c.Optimize(fleetOptRequest())
	}()
	time.Sleep(10 * time.Millisecond)
	if err := f.KillNode(victim); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	wg.Wait()
	if sweepErr != nil {
		t.Fatalf("sweep lost to node kill: %v", sweepErr)
	}
	if res.Node == victim {
		t.Fatalf("sweep claims to be served by dead node %s (kill landed too late to test anything)", victim)
	}
	if len(res.Frontier) < 3 || res.Recommended == nil {
		t.Fatalf("post-kill sweep malformed: %+v", res)
	}

	// A clean repeat on the surviving nodes must be bit-identical and —
	// landing on the node that served the post-kill sweep — memo-served.
	again, err := c.Optimize(fleetOptRequest())
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != res.Digest || len(again.Frontier) != len(res.Frontier) {
		t.Fatalf("repeat digest %x != post-kill digest %x", again.Digest, res.Digest)
	}
	if again.MemoServed == 0 {
		t.Fatalf("repeat sweep hit no warm memo: %+v", again)
	}

	// Injected answer-lost resets (the server evaluated; the response
	// vanished) retry the whole sweep — idempotency makes that safe —
	// and the frontier stays bit-identical.
	// Seed 6 pins the roll sequence: the first attempt's answer is lost,
	// the retry goes through.
	fsim := faultsim.NewTransport(faultsim.Plan{Seed: 6, PResetPost: 0.5},
		eisvc.NewTransport(eisvc.TransportTuning{}))
	c.SetTransport(fsim)
	faulted, err := c.Optimize(fleetOptRequest())
	if err != nil {
		t.Fatalf("sweep under answer-lost resets: %v", err)
	}
	if faulted.Digest != res.Digest {
		t.Fatalf("faulted sweep digest %x != %x", faulted.Digest, res.Digest)
	}
	if fc := fsim.Counters(); fc.ResetsPos == 0 {
		t.Error("fault plan injected no answer-lost resets; the test exercised nothing")
	}

	// Fleet stats fold the optimize counters across surviving nodes.
	fs := rt.Stats(context.Background())
	if fs.Aggregate.OptimizeRequests == 0 || fs.Aggregate.OptimizeEvals == 0 {
		t.Fatalf("aggregate optimize counters empty: %+v", fs.Aggregate)
	}
	if fs.Aggregate.OptimizeMemoServed > fs.Aggregate.OptimizeEvals {
		t.Fatalf("memo-served %d exceeds evals %d", fs.Aggregate.OptimizeMemoServed, fs.Aggregate.OptimizeEvals)
	}
}
