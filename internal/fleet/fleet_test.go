package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"energyclarity/internal/core"
	"energyclarity/internal/eisvc"
	"energyclarity/internal/energy"
)

// fleetEIL mirrors the two-layer stack the eisvc tests serve: two ECVs,
// so every mode yields a non-trivial distribution.
const fleetEIL = `
interface accel_hw {
  func conv2d(n) { return 0.004mJ * n }
  func mlp(n)    { return 0.01mJ * n }
}
interface ml_webservice {
  ecv request_hit: bernoulli(0.3)
  ecv local_cache_hit: bernoulli(0.8)
  uses accel: accel_hw
  func handle(request) {
    if request_hit {
      if local_cache_hit { return 5mJ * 1024 }
      return 100mJ * 1024
    }
    return 8 * accel.conv2d(request.pixels - request.zeros) + 16 * accel.mlp(256)
  }
}
`

const fleetAltHW = `
interface accel_hw_v2 {
  func conv2d(n) { return 0.008mJ * n }
  func mlp(n)    { return 0.02mJ * n }
}
`

func startFleet(t testing.TB, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func startTestRouter(t testing.TB, f *Fleet) (*Router, *eisvc.Client) {
	t.Helper()
	rt, url, shutdown, err := f.StartRouter("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	c := eisvc.NewClient(url).TuneTransport(eisvc.TransportTuning{})
	c.ID = "fleet-test"
	return rt, c
}

func traceArgs(k int) []core.Value {
	return []core.Value{core.Record(map[string]core.Value{
		"pixels": core.Num(640 * 480),
		"zeros":  core.Num(float64(1000 * (k + 1))),
	})}
}

var traceOpts = core.EvalOptions{Mode: core.ModeMonteCarlo, Samples: 256, Seed: 7}

// refDists evaluates the trace classes on a standalone reference daemon:
// the bit-identity oracle for every fleet answer.
func refDists(t testing.TB, distinct int) []energy.Dist {
	t.Helper()
	ref := eisvc.NewServer(eisvc.Config{})
	ts := httptest.NewServer(ref)
	t.Cleanup(ts.Close)
	c := eisvc.NewClient(ts.URL)
	if _, err := c.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}
	out := make([]energy.Dist, distinct)
	for k := range out {
		d, _, err := c.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = d
	}
	return out
}

func bitIdentical(t *testing.T, label string, got, want energy.Dist) {
	t.Helper()
	if !got.Equal(want, 0) {
		t.Fatalf("%s: distribution differs from the single-node reference", label)
	}
}

// TestFleetRoutingAndReplication: a register through the router lands on
// every node with one shared version, evals route with node attribution,
// and the aggregate stats see the whole cluster.
func TestFleetRoutingAndReplication(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	rt, c := startTestRouter(t, f)
	if _, err := c.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}

	var version uint64
	for i, n := range f.Nodes() {
		_, v, ok := n.Server.Registry().Get("ml_webservice")
		if !ok {
			t.Fatalf("%s: ml_webservice not replicated", n.ID)
		}
		if i == 0 {
			version = v
		} else if v != version {
			t.Fatalf("%s: version %d, want %d", n.ID, v, version)
		}
	}

	want := refDists(t, 4)
	for k := 0; k < 4; k++ {
		d, resp, err := c.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("class %d", k), d, want[k])
		if resp.Node == "" {
			t.Error("response missing node attribution")
		}
	}

	fs := rt.Stats(context.Background())
	if fs.Nodes != 3 || fs.LiveNodes != 3 || len(fs.PerNode) != 3 {
		t.Fatalf("stats shape: nodes=%d live=%d per_node=%d, want 3/3/3", fs.Nodes, fs.LiveNodes, len(fs.PerNode))
	}
	if fs.Routed < 4 {
		t.Errorf("routed = %d, want >= 4", fs.Routed)
	}
	if fs.Aggregate.EvalRequests < 4 {
		t.Errorf("aggregate eval_requests = %d, want >= 4", fs.Aggregate.EvalRequests)
	}
}

// TestFleetPeerForwarding: a node that never evaluated a key answers it
// from a peer's warm memo, bit-identically and without running Eval.
func TestFleetPeerForwarding(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	if _, err := f.RegisterSource(fleetEIL); err != nil {
		t.Fatal(err)
	}
	want := refDists(t, 1)[0]

	nodes := f.Nodes()
	warm, cold := nodes[0], nodes[1]
	cw := eisvc.NewClient(warm.URL)
	d, _, err := cw.Eval("ml_webservice", "handle", traceArgs(0), traceOpts)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "warm node", d, want)

	cc := eisvc.NewClient(cold.URL)
	d, resp, err := cc.Eval("ml_webservice", "handle", traceArgs(0), traceOpts)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "peer-forwarded", d, want)
	if !resp.Peer || !resp.Cached {
		t.Errorf("cold node response peer=%v cached=%v, want both true", resp.Peer, resp.Cached)
	}
	st, err := cc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Evaluations != 0 || st.PeerHits != 1 {
		t.Errorf("cold node evaluations=%d peer_hits=%d, want 0/1", st.Evaluations, st.PeerHits)
	}
}

// TestFleetJoinDrainRebalance: after a node joins and a warm owner
// drains, re-running the whole trace costs zero new evaluations — every
// re-homed key resolves through the peer cache (the drained node donates
// until teardown) — and answers stay bit-identical.
func TestFleetJoinDrainRebalance(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	rt, c := startTestRouter(t, f)
	if _, err := c.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}
	const distinct = 8
	want := refDists(t, distinct)

	for k := 0; k < distinct; k++ {
		d, _, err := c.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("warmup class %d", k), d, want[k])
	}
	before := rt.Stats(context.Background()).Aggregate.Evaluations

	if _, err := f.AddNode(); err != nil {
		t.Fatal(err)
	}
	victim := f.OwnersOf("ml_webservice")[0]
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.DrainNode(ctx, victim); err != nil {
		t.Fatal(err)
	}

	for k := 0; k < distinct; k++ {
		d, resp, err := c.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("post-rebalance class %d", k), d, want[k])
		if resp.Node == victim {
			t.Errorf("class %d served by drained node %s", k, victim)
		}
	}

	fs := rt.Stats(context.Background())
	if fs.Aggregate.Evaluations != before {
		t.Errorf("rebalance re-ran %d evaluations, want 0 (all memo/peer hits)",
			fs.Aggregate.Evaluations-before)
	}
	if fs.Aggregate.PeerHits == 0 {
		t.Error("no peer hits during rebalance; cache handoff did not happen")
	}
}

// TestFleetKillMidTraceSmoke is the CI fleet-smoke gate: a 3-node fleet
// serving a concurrent Zipf trace loses one node mid-trace. Every
// request must still succeed (zero lost after router failover + client
// retries) with answers bit-identical to a single-node reference.
func TestFleetKillMidTraceSmoke(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	_, c := startTestRouter(t, f)
	c.Retry = eisvc.DefaultRetryPolicy()
	if _, err := c.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}

	const (
		distinct = 16
		clients  = 4
		total    = 240
	)
	want := refDists(t, distinct)
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, distinct-1)
	trace := make([]int, total)
	for i := range trace {
		trace[i] = int(zipf.Uint64())
	}

	victim := f.OwnersOf("ml_webservice")[0]
	var started atomic.Int64
	var killed atomic.Bool
	var killOnce sync.Once
	var mu sync.Mutex
	var failures []string

	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < total; i += clients {
				if started.Add(1) == total/3 {
					killOnce.Do(func() {
						if err := f.KillNode(victim); err != nil {
							t.Errorf("kill %s: %v", victim, err)
						}
						killed.Store(true)
					})
				}
				k := trace[i]
				d, _, err := c.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
				if err != nil {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("req %d (class %d): %v", i, k, err))
					mu.Unlock()
					continue
				}
				if !d.Equal(want[k], 0) {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("req %d (class %d): answer differs from reference", i, k))
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()

	if !killed.Load() {
		t.Fatal("victim was never killed; trace too short")
	}
	if len(failures) > 0 {
		t.Fatalf("%d/%d requests lost or wrong after node kill; first: %s", len(failures), total, failures[0])
	}
	if n, _ := f.Node(victim); n.Live() {
		t.Fatal("victim still marked live")
	}
}

// TestFleetPartitionFailover: a partitioned (alive but unreachable) node
// forces router failovers, yet the fleet serves 100% with bit-identical
// answers; healing restores the node.
func TestFleetPartitionFailover(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	rt, c := startTestRouter(t, f)
	c.Retry = eisvc.DefaultRetryPolicy()
	if _, err := c.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}
	const distinct = 6
	want := refDists(t, distinct)

	victim := f.OwnersOf("ml_webservice")[0]
	if err := f.PartitionNode(victim, true); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < distinct; k++ {
		d, resp, err := c.Eval("ml_webservice", "handle", traceArgs(k), traceOpts)
		if err != nil {
			t.Fatalf("class %d during partition: %v", k, err)
		}
		bitIdentical(t, fmt.Sprintf("class %d during partition", k), d, want[k])
		if resp.Node == victim {
			t.Errorf("class %d answered by partitioned node %s", k, victim)
		}
	}
	if rt.Counters().Failovers == 0 {
		t.Error("no failovers recorded; partition was never hit")
	}

	if err := f.PartitionNode(victim, false); err != nil {
		t.Fatal(err)
	}
	n, _ := f.Node(victim)
	hc := eisvc.NewClient(n.URL)
	if err := hc.Health(); err != nil {
		t.Fatalf("healed node unreachable: %v", err)
	}
}

// TestFleetBatchRouting: a batch spanning many classes splits across the
// fleet and stitches back in order, every item bit-identical.
func TestFleetBatchRouting(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	_, c := startTestRouter(t, f)
	if _, err := c.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}
	const distinct = 10
	want := refDists(t, distinct)

	reqs := make([]eisvc.EvalRequest, distinct*2)
	for i := range reqs {
		reqs[i] = c.EvalRequestFor("ml_webservice", "handle", traceArgs(i%distinct), traceOpts)
	}
	items, err := c.EvalBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Error != "" {
			t.Fatalf("item %d: %s (status %d)", i, it.Error, it.Status)
		}
		d, err := it.Dist.Dist()
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, fmt.Sprintf("batch item %d", i), d, want[i%distinct])
	}
}

// TestFleetMutationReplication: a rebind through the router lands on all
// nodes with one shared version, and subsequent evals (wherever routed)
// price against the new binding.
func TestFleetMutationReplication(t *testing.T) {
	f := startFleet(t, Config{Nodes: 3})
	_, c := startTestRouter(t, f)
	if _, err := c.Register(fleetEIL); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(fleetAltHW); err != nil {
		t.Fatal(err)
	}
	exp := core.EvalOptions{Mode: core.ModeExpected}
	before, _, err := c.Eval("ml_webservice", "handle", traceArgs(0), exp)
	if err != nil {
		t.Fatal(err)
	}

	v, err := c.Rebind("ml_webservice", "accel", "accel_hw_v2")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range f.Nodes() {
		if _, nv, _ := n.Server.Registry().Get("ml_webservice"); nv != v {
			t.Fatalf("%s: version %d after rebind, want %d", n.ID, nv, v)
		}
	}

	// Every node must now serve the re-priced stack: ask each directly.
	for _, n := range f.Nodes() {
		nc := eisvc.NewClient(n.URL)
		after, _, err := nc.Eval("ml_webservice", "handle", traceArgs(0), exp)
		if err != nil {
			t.Fatal(err)
		}
		if after.Mean() <= before.Mean() {
			t.Errorf("%s: mean %v after doubling the accelerator price, want > %v", n.ID, after.Mean(), before.Mean())
		}
	}
}
