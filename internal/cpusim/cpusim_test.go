package cpusim

import (
	"math"
	"testing"
	"testing/quick"

	"energyclarity/internal/energy"
	"energyclarity/internal/rapl"
)

func TestChipConstruction(t *testing.T) {
	if _, err := NewChip(nil, 0.01, 1); err == nil {
		t.Error("empty chip accepted")
	}
	if _, err := NewChip([]CoreSpec{BigCore()}, 0, 1); err == nil {
		t.Error("zero quantum accepted")
	}
	bad := BigCore()
	bad.Freqs = nil
	if _, err := NewChip([]CoreSpec{bad}, 0.01, 1); err == nil {
		t.Error("core without freqs accepted")
	}
	desc := BigCore()
	desc.Freqs = []FreqLevel{{GHz: 2, ActiveW: 2}, {GHz: 1, ActiveW: 1}}
	if _, err := NewChip([]CoreSpec{desc}, 0.01, 1); err == nil {
		t.Error("descending freqs accepted")
	}
}

func TestBigLITTLEShape(t *testing.T) {
	ch := BigLITTLE()
	if ch.NumCores() != 8 {
		t.Fatalf("cores = %d", ch.NumCores())
	}
	bigs, littles := 0, 0
	for i := 0; i < ch.NumCores(); i++ {
		switch ch.Core(i).Type {
		case "big":
			bigs++
		case "little":
			littles++
		}
	}
	if bigs != 4 || littles != 4 {
		t.Fatalf("%d big, %d little", bigs, littles)
	}
}

func TestLittleMoreEfficientPerCycle(t *testing.T) {
	big, little := BigCore(), LittleCore()
	// At their lowest operating points the little core must win on energy
	// per cycle; at max frequency the big core provides more capacity.
	if little.EnergyPerCycle(0) >= big.EnergyPerCycle(0) {
		t.Fatal("little core not more efficient at low frequency")
	}
	topBig, topLittle := len(big.Freqs)-1, len(little.Freqs)-1
	if big.CapacityCycles(topBig) <= little.CapacityCycles(topLittle) {
		t.Fatal("big core not faster at top frequency")
	}
}

func TestRaceToIdleTradeoff(t *testing.T) {
	// Energy per cycle must increase with frequency on the same core
	// (superlinear power curve) — the structure DVFS policies exploit.
	for _, spec := range []CoreSpec{BigCore(), LittleCore()} {
		for l := 1; l < len(spec.Freqs); l++ {
			if spec.EnergyPerCycle(l) <= spec.EnergyPerCycle(l-1) {
				t.Errorf("%s core: energy/cycle not increasing at level %d", spec.Type, l)
			}
		}
	}
}

func TestStepIdleChip(t *testing.T) {
	ch := BigLITTLE()
	assign := make([]Assignment, ch.NumCores())
	for i := range assign {
		assign[i] = Assignment{Level: -1}
	}
	res, err := ch.Step(assign)
	if err != nil {
		t.Fatal(err)
	}
	// Idle energy: sum of idle powers + uncore, over one quantum.
	want := energy.Joules(0)
	for i := 0; i < ch.NumCores(); i++ {
		want += ch.Core(i).Idle.OverSeconds(ch.Quantum())
	}
	want += energy.Watts(0.25).OverSeconds(ch.Quantum())
	if math.Abs(float64(res.Energy-want)) > 1e-12 {
		t.Fatalf("idle quantum energy %v, want %v", res.Energy, want)
	}
	if ch.Now() != ch.Quantum() {
		t.Fatalf("clock %v", ch.Now())
	}
}

func TestStepExecutesAndMeters(t *testing.T) {
	ch := BigLITTLE()
	assign := make([]Assignment, ch.NumCores())
	for i := range assign {
		assign[i] = Assignment{Level: -1}
	}
	demand := ch.Core(0).CapacityCycles(2) * ch.Quantum() / 2 // half load at top level
	assign[0] = Assignment{Level: 2, Cycles: demand}
	res, err := ch.Step(assign)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed[0] != demand || res.Unmet[0] != 0 {
		t.Fatalf("completed %v unmet %v", res.Completed[0], res.Unmet[0])
	}
	if ch.CoreEnergy(0) <= ch.CoreEnergy(1) {
		t.Fatal("busy core not charged more than idle core")
	}
	if ch.PackageEnergy() != res.Energy {
		t.Fatal("package accumulator mismatch")
	}
}

func TestStepOverloadReportsUnmet(t *testing.T) {
	ch := BigLITTLE()
	assign := make([]Assignment, ch.NumCores())
	for i := range assign {
		assign[i] = Assignment{Level: -1}
	}
	capCycles := ch.Core(0).CapacityCycles(0) * ch.Quantum()
	assign[0] = Assignment{Level: 0, Cycles: capCycles * 2}
	res, err := ch.Step(assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Unmet[0]-capCycles) > 1e-6*capCycles {
		t.Fatalf("unmet = %v, want %v", res.Unmet[0], capCycles)
	}
}

func TestStepWorkOnParkedCoreIsUnmet(t *testing.T) {
	ch := BigLITTLE()
	assign := make([]Assignment, ch.NumCores())
	for i := range assign {
		assign[i] = Assignment{Level: -1}
	}
	assign[3] = Assignment{Level: -1, Cycles: 1000}
	res, err := ch.Step(assign)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unmet[3] != 1000 {
		t.Fatalf("unmet = %v", res.Unmet[3])
	}
}

func TestStepErrors(t *testing.T) {
	ch := BigLITTLE()
	if _, err := ch.Step(nil); err == nil {
		t.Fatal("wrong-length assignment accepted")
	}
	assign := make([]Assignment, ch.NumCores())
	assign[0] = Assignment{Level: 99, Cycles: 1}
	if _, err := ch.Step(assign); err == nil {
		t.Fatal("bad DVFS level accepted")
	}
}

func TestChipSatisfiesRAPLDevice(t *testing.T) {
	ch := BigLITTLE()
	counter := rapl.NewCounter(ch, rapl.DefaultESU)
	w := counter.NewWindow()
	assign := make([]Assignment, ch.NumCores())
	for i := range assign {
		assign[i] = Assignment{Level: 0, Cycles: 1e6}
	}
	for q := 0; q < 100; q++ {
		if _, err := ch.Step(assign); err != nil {
			t.Fatal(err)
		}
	}
	measured := float64(w.Energy())
	truth := float64(ch.PackageEnergy())
	if math.Abs(measured-truth) > float64(counter.UnitJoules())*2 {
		t.Fatalf("RAPL window %v vs truth %v", measured, truth)
	}
}

func TestQuickEnergyMonotoneInLoad(t *testing.T) {
	// More assigned cycles at the same level never consumes less energy.
	f := func(loadRaw float64) bool {
		load := math.Abs(math.Mod(loadRaw, 1))
		mk := func(frac float64) energy.Joules {
			ch := BigLITTLE()
			assign := make([]Assignment, ch.NumCores())
			for i := range assign {
				assign[i] = Assignment{Level: -1}
			}
			capCycles := ch.Core(0).CapacityCycles(1) * ch.Quantum()
			assign[0] = Assignment{Level: 1, Cycles: capCycles * frac}
			res, err := ch.Step(assign)
			if err != nil {
				return -1
			}
			return res.Energy
		}
		lo := mk(load / 2)
		hi := mk(load)
		return lo >= 0 && hi >= 0 && hi >= lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
