// Package cpusim simulates an asymmetric multicore CPU (big.LITTLE) with
// per-core DVFS, in quantum-stepped time. It is the substrate for the
// paper's §1 scheduling scenarios: the Linux Energy-Aware Scheduler example
// (bimodal transcoding workloads mispredicted by utilization proxies) and
// the Kubernetes node-selection example.
//
// The model is deliberately simple but captures the energy structure that
// matters: per-core active power grows superlinearly with frequency, little
// cores are more efficient per cycle at low throughput, idle cores leak,
// and the package burns uncore power whenever the chip is on. The package
// energy counter satisfies rapl.Device, so schedulers are evaluated with
// the same (simulated) measurement infrastructure as everything else.
package cpusim

import (
	"fmt"

	"energyclarity/internal/energy"
)

// FreqLevel is one DVFS operating point.
type FreqLevel struct {
	GHz     float64
	ActiveW energy.Watts // power while executing
}

// CoreSpec describes one core type.
type CoreSpec struct {
	Type  string // "big" or "little"
	IPC   float64
	Idle  energy.Watts
	Freqs []FreqLevel // ascending by GHz
}

// CapacityCycles returns the cycles the core retires per second at level l.
func (cs CoreSpec) CapacityCycles(l int) float64 {
	return cs.Freqs[l].GHz * 1e9 * cs.IPC
}

// BigCore returns a performance core: fast, power-hungry, superlinear
// power-frequency curve.
func BigCore() CoreSpec {
	return CoreSpec{
		Type: "big",
		IPC:  3.0,
		Idle: 0.15,
		Freqs: []FreqLevel{
			{GHz: 0.8, ActiveW: 1.1},
			{GHz: 1.6, ActiveW: 3.2},
			{GHz: 2.4, ActiveW: 7.0},
		},
	}
}

// LittleCore returns an efficiency core: slower but far cheaper per cycle.
func LittleCore() CoreSpec {
	return CoreSpec{
		Type: "little",
		IPC:  1.2,
		Idle: 0.05,
		Freqs: []FreqLevel{
			{GHz: 0.6, ActiveW: 0.22},
			{GHz: 1.0, ActiveW: 0.55},
			{GHz: 1.5, ActiveW: 1.35},
		},
	}
}

// EnergyPerCycle returns joules per retired cycle at level l — the quantity
// an energy-aware placement minimizes.
func (cs CoreSpec) EnergyPerCycle(l int) energy.Joules {
	return energy.Joules(float64(cs.Freqs[l].ActiveW) / cs.CapacityCycles(l))
}

// Chip is a set of cores sharing a package, stepped in fixed quanta.
type Chip struct {
	cores   []CoreSpec
	uncoreW energy.Watts
	quantum float64 // seconds per scheduling quantum

	now     float64
	pkg     energy.Joules
	perCore []energy.Joules
}

// NewChip builds a chip from core specs. quantum is the scheduling quantum
// in seconds; uncoreW is package power burned whenever the chip is on.
func NewChip(cores []CoreSpec, quantum float64, uncoreW energy.Watts) (*Chip, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("cpusim: chip with no cores")
	}
	if quantum <= 0 {
		return nil, fmt.Errorf("cpusim: non-positive quantum")
	}
	for i, c := range cores {
		if len(c.Freqs) == 0 || c.IPC <= 0 {
			return nil, fmt.Errorf("cpusim: core %d (%s) malformed", i, c.Type)
		}
		for j := 1; j < len(c.Freqs); j++ {
			if c.Freqs[j].GHz <= c.Freqs[j-1].GHz {
				return nil, fmt.Errorf("cpusim: core %d frequencies not ascending", i)
			}
		}
	}
	return &Chip{
		cores:   cores,
		uncoreW: uncoreW,
		quantum: quantum,
		perCore: make([]energy.Joules, len(cores)),
	}, nil
}

// BigLITTLE returns the canonical 4+4 phone/edge chip used by the E2
// experiment: 4 big + 4 little cores, 10 ms quantum.
func BigLITTLE() *Chip {
	cores := make([]CoreSpec, 0, 8)
	for i := 0; i < 4; i++ {
		cores = append(cores, BigCore())
	}
	for i := 0; i < 4; i++ {
		cores = append(cores, LittleCore())
	}
	chip, err := NewChip(cores, 0.010, 0.25)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return chip
}

// NumCores returns the core count.
func (ch *Chip) NumCores() int { return len(ch.cores) }

// Core returns the spec of core i.
func (ch *Chip) Core(i int) CoreSpec { return ch.cores[i] }

// Quantum returns the scheduling quantum in seconds.
func (ch *Chip) Quantum() float64 { return ch.quantum }

// Now returns chip time in seconds.
func (ch *Chip) Now() float64 { return ch.now }

// PackageEnergy returns cumulative package energy; satisfies rapl.Device.
func (ch *Chip) PackageEnergy() energy.Joules { return ch.pkg }

// CoreEnergy returns cumulative energy attributed to core i.
func (ch *Chip) CoreEnergy(i int) energy.Joules { return ch.perCore[i] }

// Assignment is one core's work for a quantum: the DVFS level to run at and
// the cycles of demand assigned to it. Level -1 parks the core (idle).
type Assignment struct {
	Level  int
	Cycles float64
}

// QuantumResult reports what one quantum executed.
type QuantumResult struct {
	Completed []float64     // cycles actually retired per core
	Unmet     []float64     // cycles assigned but not completed (overload)
	Energy    energy.Joules // package energy of this quantum
}

// Step executes one quantum with the given per-core assignments. A core
// retires at most capacity×quantum cycles; assigned cycles beyond that are
// reported unmet (QoS violation). Energy: active power for the busy
// fraction, idle power for the rest, plus uncore power. It returns an
// error on malformed assignments.
func (ch *Chip) Step(assign []Assignment) (QuantumResult, error) {
	if len(assign) != len(ch.cores) {
		return QuantumResult{}, fmt.Errorf("cpusim: %d assignments for %d cores",
			len(assign), len(ch.cores))
	}
	res := QuantumResult{
		Completed: make([]float64, len(ch.cores)),
		Unmet:     make([]float64, len(ch.cores)),
	}
	var total energy.Joules
	for i, a := range assign {
		spec := ch.cores[i]
		if a.Level == -1 || a.Cycles <= 0 {
			e := spec.Idle.OverSeconds(ch.quantum)
			ch.perCore[i] += e
			total += e
			if a.Cycles > 0 {
				res.Unmet[i] = a.Cycles // work assigned to a parked core
			}
			continue
		}
		if a.Level < 0 || a.Level >= len(spec.Freqs) {
			return QuantumResult{}, fmt.Errorf("cpusim: core %d: bad DVFS level %d", i, a.Level)
		}
		capCycles := spec.CapacityCycles(a.Level) * ch.quantum
		done := a.Cycles
		if done > capCycles {
			done = capCycles
			res.Unmet[i] = a.Cycles - capCycles
		}
		busyFrac := done / capCycles
		e := spec.Freqs[a.Level].ActiveW.OverSeconds(ch.quantum*busyFrac) +
			spec.Idle.OverSeconds(ch.quantum*(1-busyFrac))
		ch.perCore[i] += e
		total += e
		res.Completed[i] = done
	}
	total += ch.uncoreW.OverSeconds(ch.quantum)
	ch.pkg += total
	ch.now += ch.quantum
	res.Energy = total
	return res, nil
}
