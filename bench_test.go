package energyclarity_test

// One benchmark per table/figure/experiment (DESIGN.md §3): each runs the
// full experiment pipeline and reports its headline numbers as custom
// metrics, so `go test -bench=.` regenerates the evaluation. Micro-
// benchmarks at the bottom measure the framework itself (interface
// evaluation throughput, EIL interpretation overhead, simulator speed).

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"energyclarity"
	"energyclarity/internal/core"
	"energyclarity/internal/drift"
	"energyclarity/internal/eil"
	"energyclarity/internal/eisvc"
	"energyclarity/internal/experiments"
	"energyclarity/internal/fleet"
	"energyclarity/internal/gpusim"
	"energyclarity/internal/microbench"
	"energyclarity/internal/nn"
	"energyclarity/internal/schedsvc"
)

// BenchmarkTable1GPT2PredictionError regenerates Table 1.
func BenchmarkTable1GPT2PredictionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Rows[0].AvgErr, "%avgErr4090")
		b.ReportMetric(100*res.Rows[0].MaxErr, "%maxErr4090")
		b.ReportMetric(100*res.Rows[1].AvgErr, "%avgErr3070")
		b.ReportMetric(100*res.Rows[1].MaxErr, "%maxErr3070")
	}
}

// BenchmarkFig1WebServiceInterface regenerates the Fig. 1 sweep.
func BenchmarkFig1WebServiceInterface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1WebService()
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, p := range res.Points {
			if p.RelErr > worst {
				worst = p.RelErr
			}
		}
		b.ReportMetric(100*worst, "%worstErr")
	}
}

// BenchmarkFig2LayerRebinding regenerates the rebinding experiment.
func BenchmarkFig2LayerRebinding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2Rebinding()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Rows[0].RelErr, "%err4090")
		b.ReportMetric(100*res.Rows[1].RelErr, "%errRebound3070")
	}
}

// BenchmarkE1ClusterFuzzSizing regenerates the fleet-sizing experiment.
func BenchmarkE1ClusterFuzzSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1ClusterFuzz()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.InterfaceOptimalN), "optimalN")
		b.ReportMetric(float64(res.TrialSearchEnergy/res.InterfaceOptimalE), "searchCostX")
	}
}

// BenchmarkE2EASBimodal regenerates the scheduler comparison.
func BenchmarkE2EASBimodal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E2EASBimodal()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Baseline.UnmetFraction(), "%backlogBaseline")
		b.ReportMetric(100*res.Aware.UnmetFraction(), "%backlogAware")
	}
}

// BenchmarkE3KubePlacement regenerates the placer comparison.
func BenchmarkE3KubePlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3KubePlacement()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.EnergySavings(), "%savings")
	}
}

// BenchmarkE4ContractChecking regenerates the verification workflow.
func BenchmarkE4ContractChecking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4Contracts()
		if err != nil {
			b.Fatal(err)
		}
		flagged := 0.0
		if res.BugFlagged {
			flagged = 1
		}
		b.ReportMetric(flagged, "bugFlagged")
	}
}

// BenchmarkE5Extraction regenerates the extraction experiment.
func BenchmarkE5Extraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5Extraction()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxDeviation, "maxDeviation")
	}
}

// BenchmarkE6ErrorPropagation regenerates the composition-error curve.
func BenchmarkE6ErrorPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E6ErrorPropagation()
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.TopErrCorrelated/last.Epsilon, "amplification")
	}
}

// BenchmarkE7ProfilingBaseline regenerates the regression comparison.
func BenchmarkE7ProfilingBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E7Profiling()
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(100*last.RegressionErr, "%regOODErr")
		b.ReportMetric(100*last.InterfaceErr, "%ifaceOODErr")
	}
}

// BenchmarkE8PowerProvisioning regenerates the provisioning experiment.
func BenchmarkE8PowerProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E8PowerProvisioning()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.UtilizationGain, "%moreServers")
	}
}

// BenchmarkE9DVFS regenerates the frequency-selection experiment.
func BenchmarkE9DVFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E9DVFS()
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range res.Decisions {
			if d.Workload == "decode-200" {
				b.ReportMetric(100*d.Savings, "%decodeSavings")
			}
		}
	}
}

// BenchmarkE10BatchServing regenerates the batch-size sweep.
func BenchmarkE10BatchServing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E10BatchServing()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.SavingsVsB1, "%perTokenSavings")
	}
}

// --- ablation benchmarks ---

// BenchmarkA1ExactEnumeration measures exact ECV-enumeration evaluation.
func BenchmarkA1ExactEnumeration(b *testing.B) {
	iface := fig1Bench(b)
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	args := []core.Value{img}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iface.Eval("handle", args, core.Expected()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1MonteCarlo measures Monte Carlo evaluation at 1k samples.
func BenchmarkA1MonteCarlo(b *testing.B) {
	iface := fig1Bench(b)
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	args := []core.Value{img}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iface.Eval("handle", args, core.MonteCarlo(1000, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2NativeInterface measures Go-native interface evaluation.
func BenchmarkA2NativeInterface(b *testing.B) {
	iface := fig1Bench(b)
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	assign := core.FixedAssignment(map[string]core.Value{
		"request_hit": core.Bool(false), "local_cache_hit": core.Bool(false),
	})
	args := []core.Value{img}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iface.Eval("handle", args, assign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2EILInterface measures the same program interpreted from EIL —
// the interpretation overhead is the price of machine-readable interfaces.
// Interpret pins the tree-walking interpreter: the registered optimizing
// compiler would otherwise serve this from a flat program (that speedup is
// measured separately by BenchmarkEvalCompiled).
func BenchmarkA2EILInterface(b *testing.B) {
	compiled, err := eil.Compile(fig1EILBench, nil)
	if err != nil {
		b.Fatal(err)
	}
	iface := compiled["ml_webservice"]
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	assign := core.FixedAssignment(map[string]core.Value{
		"request_hit": core.Bool(false), "local_cache_hit": core.Bool(false),
	})
	assign.Interpret = true
	args := []core.Value{img}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iface.Eval("handle", args, assign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalParallel measures Monte Carlo evaluation throughput at
// fixed parallelism levels (1, 4, and one worker per CPU), reporting
// samples/sec so runs on different machines compare directly. On a
// machine with ≥4 CPUs the pmax case should approach a linear multiple
// of p1; the sharded sampler makes the resulting Dist bit-identical at
// every level.
func BenchmarkEvalParallel(b *testing.B) {
	const samples = 4096
	iface := fig1Bench(b)
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	args := []core.Value{img}
	for _, pc := range []struct {
		name string
		par  int
	}{
		{"p1", 1},
		{"p4", 4},
		{"pmax", 0}, // 0 = one worker per available CPU
	} {
		b.Run(pc.name, func(b *testing.B) {
			opts := core.MonteCarlo(samples, 7)
			opts.Parallelism = pc.par
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := iface.Eval("handle", args, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// BenchmarkEvalParallelEnumerate measures exact-enumeration fan-out on a
// wider joint ECV space (6 bool ECVs = 64 assignments) at the same
// parallelism levels.
func BenchmarkEvalParallelEnumerate(b *testing.B) {
	iface := core.New("enum_bench")
	for i := 0; i < 6; i++ {
		iface.MustECV(core.BoolECV(string(rune('a'+i)), 0.5, ""))
	}
	iface.MustMethod(core.Method{Name: "run", Body: func(c *core.Call) energyclarity.Joules {
		j := energyclarity.Joules(1)
		for i := 0; i < 6; i++ {
			if c.ECVBool(string(rune('a' + i))) {
				j *= 2
			}
		}
		return j
	}})
	for _, pc := range []struct {
		name string
		par  int
	}{
		{"p1", 1},
		{"p4", 4},
		{"pmax", 0},
	} {
		b.Run(pc.name, func(b *testing.B) {
			opts := core.Expected()
			opts.Parallelism = pc.par
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := iface.Eval("run", nil, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11DaemonServing regenerates the daemon-serving experiment.
func BenchmarkE11DaemonServing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11DaemonServing()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.HitRate, "%memoHits")
		b.ReportMetric(float64(res.Shed()), "shed")
	}
}

// BenchmarkDaemonEval measures wire-served evaluation through the eid
// daemon over real loopback HTTP: cold (every request carries a fresh
// Monte Carlo seed, so the memo can never answer) against memo hits (the
// same request repeated). The gap is the daemon's pitch: a hit costs one
// HTTP round-trip and a cache lookup instead of a full evaluation.
func BenchmarkDaemonEval(b *testing.B) {
	const samples = 32768
	srv := eisvc.NewServer(eisvc.Config{})
	if _, err := srv.Registry().RegisterInterface("ml_webservice", fig1Bench(b)); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := eisvc.NewClient(ts.URL)
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	args := []core.Value{img}
	var seed int64 // persists across the harness's calibration reruns
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed++
			_, resp, err := c.Eval("ml_webservice", "handle", args, core.MonteCarlo(samples, seed))
			if err != nil {
				b.Fatal(err)
			}
			if resp.Cached {
				b.Fatal("distinct seeds must not hit the memo")
			}
		}
	})
	b.Run("memo-hit", func(b *testing.B) {
		opts := core.MonteCarlo(samples, 7)
		if _, _, err := c.Eval("ml_webservice", "handle", args, opts); err != nil {
			b.Fatal(err) // warm the memo
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, resp, err := c.Eval("ml_webservice", "handle", args, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("repeated request missed the memo")
			}
		}
	})
}

// BenchmarkEvalLayerCache measures the compositional layer cache on the
// full GPT-2 stack interface: "off" walks the whole kernel tree every
// evaluation; "warm" answers sub-evaluations (prefill, per-token decode,
// kernel pricing) from the cache, so an evaluation collapses to a few
// lookups plus the root body. The off/warm ratio is the per-request win
// E12 measures end to end.
func BenchmarkEvalLayerCache(b *testing.B) {
	spec := gpusim.RTX4090()
	coef := benchCoef(spec)
	iface, err := nn.StackInterface(nn.GPT2Small(), coef.DeviceInterface(spec))
	if err != nil {
		b.Fatal(err)
	}
	args := []core.Value{core.Num(16), core.Num(100)}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := iface.Eval("generate", args, core.Expected()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		opts := core.Expected()
		opts.Layer = core.NewLayerCache(core.DefaultLayerCapacity)
		if _, err := iface.Eval("generate", args, opts); err != nil {
			b.Fatal(err) // warm the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := iface.Eval("generate", args, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := opts.Layer.Stats()
		if st.Hits+st.Misses > 0 {
			b.ReportMetric(100*float64(st.Hits)/float64(st.Hits+st.Misses), "%layerHits")
		}
	})
}

// BenchmarkDaemonBatch measures serving one batch of requests with
// duplicated classes through the daemon: "sequential" issues each request
// as its own /v1/eval round trip; "batch" sends all of them in one
// /v1/evalbatch, where duplicates are answered by in-batch deduplication
// and distinct classes evaluate concurrently under the same admission
// discipline. Every iteration uses fresh Monte Carlo seeds, so the memo
// never answers and the comparison isolates batching itself.
func BenchmarkDaemonBatch(b *testing.B) {
	const (
		samples = 8192
		classes = 4
		dups    = 2 // total items per iteration: classes * dups
	)
	srv := eisvc.NewServer(eisvc.Config{})
	if _, err := srv.Registry().RegisterInterface("ml_webservice", fig1Bench(b)); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := eisvc.NewClient(ts.URL)
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	args := []core.Value{img}
	var seed int64 // fresh seeds across sub-benches and calibration reruns
	iterOpts := func() []core.EvalOptions {
		seed++
		opts := make([]core.EvalOptions, 0, classes*dups)
		for d := 0; d < dups; d++ {
			for k := 0; k < classes; k++ {
				opts = append(opts, core.MonteCarlo(samples, seed*classes+int64(k)))
			}
		}
		return opts
	}
	build := func() []eisvc.EvalRequest {
		reqs := make([]eisvc.EvalRequest, 0, classes*dups)
		for _, o := range iterOpts() {
			reqs = append(reqs, c.EvalRequestFor("ml_webservice", "handle", args, o))
		}
		return reqs
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, o := range iterOpts() {
				if _, _, err := c.Eval("ml_webservice", "handle", args, o); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			items, err := c.EvalBatch(build())
			if err != nil {
				b.Fatal(err)
			}
			deduped := 0
			for _, it := range items {
				if it.Error != "" {
					b.Fatal(it.Error)
				}
				if it.Deduped {
					deduped++
				}
			}
			if deduped != classes*(dups-1) {
				b.Fatalf("expected %d deduplicated items, got %d", classes*(dups-1), deduped)
			}
		}
	})
}

// BenchmarkDriftDetect measures the online drift monitor end to end:
// each iteration streams a healthy warmup and then a 5%-aged tail of
// (predicted, measured) pairs through a fresh monitor until it latches a
// drifting verdict. ns/op is the full detect cycle; samplesToDetect is
// the detection delay the monitor needed after the shift.
func BenchmarkDriftDetect(b *testing.B) {
	classes := []string{"generate/50", "generate/100", "generate/200"}
	const healthy = 16
	pred := 40 * energyclarity.Joule
	var delay float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := drift.NewMonitor(drift.Config{})
		n := 0
		for st := m.State(); st == drift.StateWarmup || st == drift.StateStable; st = m.State() {
			meas := pred
			if n >= healthy {
				meas = pred * 1.05 // aged silicon: +5% across every class
			}
			m.Ingest(classes[n%len(classes)], pred, meas)
			if n++; n > 4096 {
				b.Fatal("monitor never latched a verdict")
			}
		}
		if st := m.State(); st != drift.StateDrifting {
			b.Fatalf("monitor latched %v, want drifting", st)
		}
		delay = float64(n - healthy)
	}
	b.ReportMetric(delay, "samplesToDetect")
}

// BenchmarkRecalibrate measures the automated-repair path a drift verdict
// triggers: refit the device coefficients against live silicon with the
// microbenchmark probes, then install them into the GPT-2 stack through
// the version-bumping rebind that keeps layer caches consistent.
func BenchmarkRecalibrate(b *testing.B) {
	spec := gpusim.RTX4090()
	g := gpusim.NewGPU(spec, 30)
	stack, err := nn.StackInterface(nn.GPT2Small(), benchCoef(spec).DeviceInterface(spec))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coef, err := microbench.Calibrate(g, experiments.CalibrationRepeats)
		if err != nil {
			b.Fatal(err)
		}
		ns, err := stack.Rebind("hw", coef.DeviceInterface(spec))
		if err != nil {
			b.Fatal(err)
		}
		stack = ns
	}
}

// --- framework microbenchmarks ---

// BenchmarkGPUKernelLaunch measures simulator throughput (kernels/sec).
func BenchmarkGPUKernelLaunch(b *testing.B) {
	g := gpusim.NewGPU(gpusim.RTX4090(), 1)
	k := gpusim.Kernel{Instructions: 1e6, L1Accesses: 4e5, WorkingSet: 1 << 20, Reuse: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Launch(k)
	}
}

// BenchmarkGPT2DecodeStep measures one simulated autoregressive step.
func BenchmarkGPT2DecodeStep(b *testing.B) {
	g := gpusim.NewGPU(gpusim.RTX4090(), 1)
	cfg := nn.GPT2Small()
	kernels := cfg.DecodeKernels(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range kernels {
			g.Launch(k)
		}
	}
}

// BenchmarkStackInterfaceEval measures a full 100-token interface
// prediction (the a-priori question a resource manager asks).
func BenchmarkStackInterfaceEval(b *testing.B) {
	spec := gpusim.RTX4090()
	coef := benchCoef(spec)
	iface, err := nn.StackInterface(nn.GPT2Small(), coef.DeviceInterface(spec))
	if err != nil {
		b.Fatal(err)
	}
	args := []core.Value{core.Num(16), core.Num(100)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iface.Eval("generate", args, core.Expected()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEILCompile measures compiling the Fig. 1 program.
func BenchmarkEILCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eil.Compile(fig1EILBench, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistConvolution measures distribution arithmetic (the cost of
// carrying energy as a random variable).
func BenchmarkDistConvolution(b *testing.B) {
	d := energyclarity.Categorical([]float64{0, 1, 7}, []float64{0.2, 0.5, 0.3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Repeat(64)
	}
}

// --- compiled-vs-interpreted evaluation benchmarks (E15) ---

// evalBenchModes is the mode matrix both E15 benchmarks sweep.
func evalBenchModes() []struct {
	name string
	opts core.EvalOptions
} {
	fixed := map[string]core.Value{
		"kv_spill": core.Bool(false), "hw.thermal_throttle": core.Bool(false),
	}
	return []struct {
		name string
		opts core.EvalOptions
	}{
		{"expected", core.Expected()},
		{"worst", core.WorstCase()},
		{"best", core.BestCase()},
		{"fixed", core.FixedAssignment(fixed)},
		// 512 samples (not the 2048 default) keeps the interpreted
		// baseline cheap enough for the bench-json CI target.
		{"mc", core.MonteCarlo(512, 7)},
	}
}

func gpt2EILBench(b *testing.B) *core.Interface {
	b.Helper()
	stack, err := nn.GPT2EILStack()
	if err != nil {
		b.Fatal(err)
	}
	return stack
}

// benchEvalStack runs the full GPT-2 EIL stack through every mode, cold
// and warm. Cold rebuilds the interface tree each iteration (Rebind
// clones with fresh versions and an empty program cache), so the compiled
// path pays lowering, folding, specialization, and emission inside the
// measurement; warm reuses the tree, so compiled evaluations hit the
// cached specialized program. The interpreter keeps no per-tree state, so
// its cold and warm numbers only differ by the Rebind clone itself.
func benchEvalStack(b *testing.B, interpret bool) {
	stack := gpt2EILBench(b)
	hw := stack.Binding("hw")
	args := []core.Value{core.Num(64), core.Num(8)}
	for _, m := range evalBenchModes() {
		opts := m.opts
		opts.Interpret = interpret
		b.Run("cold/"+m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fresh, err := stack.Rebind("hw", hw)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fresh.Eval("generate", args, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("warm/"+m.name, func(b *testing.B) {
			if _, err := stack.Eval("generate", args, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stack.Eval("generate", args, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalCompiled measures full-stack GPT-2 EIL evaluation through
// the optimizing compiler (internal/opt): methods lower to flat
// instruction programs, partial evaluation folds the architecture
// constants, and per-assignment runs replay only the ECV-dependent
// suffix. Compare against BenchmarkEvalInterpreted; E15 tabulates the
// ratio (the tentpole target is ≥10x cold).
func BenchmarkEvalCompiled(b *testing.B) { benchEvalStack(b, false) }

// BenchmarkEvalInterpreted measures the identical evaluations forced
// through the tree-walking interpreter (EvalOptions.Interpret), the
// reference semantics the compiled path must match bit for bit.
func BenchmarkEvalInterpreted(b *testing.B) { benchEvalStack(b, true) }

// BenchmarkFleetEval measures the fleet serving path end to end: a
// 3-node cluster behind the consistent-hashing router. "router-memo-hit"
// is the steady-state hot path (route to the shard owner, answer from
// its memo); "peer-forward" prices a shard re-home (a cold node fetches
// a fresh key from the warm peer's memo instead of re-evaluating).
func BenchmarkFleetEval(b *testing.B) {
	const samples = 1024
	f, err := fleet.New(fleet.Config{Nodes: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := f.SeedInterface("ml_webservice", fig1Bench(b)); err != nil {
		b.Fatal(err)
	}
	_, base, stop, err := f.StartRouter("")
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	args := []core.Value{img}
	var seed int64 // persists across the harness's calibration reruns

	b.Run("router-memo-hit", func(b *testing.B) {
		c := eisvc.NewClient(base).TuneTransport(eisvc.TransportTuning{})
		opts := core.MonteCarlo(samples, 7)
		if _, _, err := c.Eval("ml_webservice", "handle", args, opts); err != nil {
			b.Fatal(err) // warm the owner's memo
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, resp, err := c.Eval("ml_webservice", "handle", args, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("repeated request missed the fleet memo")
			}
		}
	})
	b.Run("peer-forward", func(b *testing.B) {
		nodes := f.Nodes()
		warm := eisvc.NewClient(nodes[0].URL).TuneTransport(eisvc.TransportTuning{})
		cold := eisvc.NewClient(nodes[1].URL).TuneTransport(eisvc.TransportTuning{})
		for i := 0; i < b.N; i++ {
			seed++
			opts := core.MonteCarlo(samples, seed)
			if _, _, err := warm.Eval("ml_webservice", "handle", args, opts); err != nil {
				b.Fatal(err)
			}
			_, resp, err := cold.Eval("ml_webservice", "handle", args, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Peer {
				b.Fatal("fresh key on the cold node was not served by a peer")
			}
		}
	})
}

// BenchmarkFleetBatch measures a mixed batch through the router: each
// iteration sends fresh-seeded items that the router splits by shard
// owner, fans out concurrently, and stitches back in request order.
func BenchmarkFleetBatch(b *testing.B) {
	const (
		samples = 1024
		classes = 4
		dups    = 4 // items per iteration: classes * dups
	)
	f, err := fleet.New(fleet.Config{Nodes: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := f.SeedInterface("ml_webservice", fig1Bench(b)); err != nil {
		b.Fatal(err)
	}
	_, base, stop, err := f.StartRouter("")
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	c := eisvc.NewClient(base).TuneTransport(eisvc.TransportTuning{})
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	args := []core.Value{img}
	var seed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed++
		reqs := make([]eisvc.EvalRequest, 0, classes*dups)
		for d := 0; d < dups; d++ {
			for k := 0; k < classes; k++ {
				reqs = append(reqs, c.EvalRequestFor("ml_webservice", "handle", args,
					core.MonteCarlo(samples, seed*classes+int64(k))))
			}
		}
		items, err := c.EvalBatch(reqs)
		if err != nil {
			b.Fatal(err)
		}
		for j, it := range items {
			if it.Error != "" || it.Dist == nil {
				b.Fatalf("batch item %d: %+v", j, it)
			}
		}
	}
}

// BenchmarkWireCodec measures encoding + decoding one eval response
// (memo-hit shaped: a real Monte Carlo distribution) through both wire
// codecs. The binary codec is the daemon's hot path; JSON is the debug
// path the binary numbers are compared against. Run with -benchmem: the
// pooled binary path should allocate a fraction of what JSON does.
func BenchmarkWireCodec(b *testing.B) {
	iface := fig1Bench(b)
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	d, err := iface.Eval("handle", []core.Value{img}, core.MonteCarlo(32768, 7))
	if err != nil {
		b.Fatal(err)
	}
	resp := eisvc.EvalResponse{
		Interface: "ml_webservice", Version: 1, Method: "handle",
		Mode: core.ModeMonteCarlo.String(), Dist: eisvc.ToWire(d), Cached: true,
	}
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := eisvc.GetBuffer()
			if err := eisvc.EncodeEvalResponse(buf, &resp); err != nil {
				b.Fatal(err)
			}
			if _, err := eisvc.DecodeEvalResponse(buf.Bytes()); err != nil {
				b.Fatal(err)
			}
			eisvc.PutBuffer(buf)
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			raw, err := json.Marshal(&resp)
			if err != nil {
				b.Fatal(err)
			}
			var out eisvc.EvalResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemoHitBinary measures one memo-served evaluation through the
// binary codec: over loopback TCP (the fleet's inter-node path) and over
// the in-process loopback transport (the fleet's same-process and
// embedded path, where the sub-10 µs memo hit lives). Compare against
// BenchmarkDaemonEval/memo-hit, the JSON-over-TCP baseline.
func BenchmarkMemoHitBinary(b *testing.B) {
	const samples = 32768
	srv := eisvc.NewServer(eisvc.Config{})
	if _, err := srv.Registry().RegisterInterface("ml_webservice", fig1Bench(b)); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	img := core.Record(map[string]core.Value{"pixels": core.Num(1e6), "zeros": core.Num(2e5)})
	args := []core.Value{img}
	opts := core.MonteCarlo(samples, 7)
	if _, _, err := eisvc.NewClient(ts.URL).Eval("ml_webservice", "handle", args, opts); err != nil {
		b.Fatal(err) // warm the memo
	}
	run := func(b *testing.B, c *eisvc.Client) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, resp, err := c.Eval("ml_webservice", "handle", args, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("repeated request missed the memo")
			}
		}
	}
	b.Run("tcp", func(b *testing.B) {
		c := eisvc.NewClient(ts.URL)
		c.Binary = true
		run(b, c)
	})
	b.Run("loopback", func(b *testing.B) {
		c := eisvc.NewClient("http://loopback")
		c.SetTransport(eisvc.NewLoopbackTransport(srv))
		c.Binary = true
		run(b, c)
	})
}

// BenchmarkWarmRestart measures restart recovery: saving a warm daemon's
// caches to the snapshot file and loading them into a cold daemon — the
// work a restarted fleet node does before it serves its first warm
// answer. The memo holds a realistic working set of Monte Carlo
// distributions.
func BenchmarkWarmRestart(b *testing.B) {
	const entries = 512
	iface := fig1Bench(b)
	src := eisvc.NewServer(eisvc.Config{MemoCapacity: entries})
	if _, err := src.Registry().RegisterInterface("ml_webservice", iface); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(src)
	defer ts.Close()
	c := eisvc.NewClient(ts.URL)
	for k := 0; k < entries; k++ {
		img := core.Record(map[string]core.Value{
			"pixels": core.Num(1e6), "zeros": core.Num(float64(100 * (k + 1))),
		})
		if _, _, err := c.Eval("ml_webservice", "handle", []core.Value{img}, core.MonteCarlo(1024, 7)); err != nil {
			b.Fatal(err)
		}
	}
	path := b.TempDir() + "/warm.eisnap"
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := src.SaveCacheSnapshot(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := src.SaveCacheSnapshot(path); err != nil {
		b.Fatal(err)
	}
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst := eisvc.NewServer(eisvc.Config{MemoCapacity: entries})
			memoN, _, err := dst.LoadCacheSnapshot(path)
			if err != nil {
				b.Fatal(err)
			}
			if memoN != entries {
				b.Fatalf("loaded %d entries, want %d", memoN, entries)
			}
		}
	})
}

// --- shared fixtures ---

const fig1EILBench = `
interface accel_hw {
  func conv2d(n) { return 0.004mJ * n }
  func relu(n)   { return 0.001mJ * n }
  func mlp(n)    { return 0.01mJ * n }
}
interface ml_webservice {
  ecv request_hit: bernoulli(0.3)
  ecv local_cache_hit: bernoulli(0.8)
  uses accel: accel_hw
  func handle(request) {
    if request_hit {
      if local_cache_hit { return 5mJ * 1024 }
      return 100mJ * 1024
    }
    return 8 * accel.conv2d(request.pixels - request.zeros)
         + 8 * accel.relu(256) + 16 * accel.mlp(256)
  }
}
`

func fig1Bench(b *testing.B) *core.Interface {
	b.Helper()
	mJ := func(x float64) energyclarity.Joules {
		return energyclarity.Joules(x) * energyclarity.Millijoule
	}
	accel := core.New("accel_hw").
		MustMethod(core.Method{Name: "conv2d", Params: []string{"n"},
			Body: func(c *core.Call) energyclarity.Joules { return mJ(0.004 * c.Num(0)) }}).
		MustMethod(core.Method{Name: "relu", Params: []string{"n"},
			Body: func(c *core.Call) energyclarity.Joules { return mJ(0.001 * c.Num(0)) }}).
		MustMethod(core.Method{Name: "mlp", Params: []string{"n"},
			Body: func(c *core.Call) energyclarity.Joules { return mJ(0.01 * c.Num(0)) }})
	svc := core.New("ml_webservice").
		MustECV(core.BoolECV("request_hit", 0.3, "")).
		MustECV(core.BoolECV("local_cache_hit", 0.8, "")).
		MustBind("accel", accel).
		MustMethod(core.Method{Name: "handle", Params: []string{"request"},
			Body: func(c *core.Call) energyclarity.Joules {
				if c.ECVBool("request_hit") {
					if c.ECVBool("local_cache_hit") {
						return mJ(5 * 1024)
					}
					return mJ(100 * 1024)
				}
				return 8*c.E("accel", "conv2d", core.Num(c.FieldNum(0, "pixels")-c.FieldNum(0, "zeros"))) +
					8*c.E("accel", "relu", core.Num(256)) +
					16*c.E("accel", "mlp", core.Num(256))
			}})
	return svc
}

func benchCoef(spec gpusim.Spec) microbench.Coefficients {
	return microbench.Coefficients{
		Device: spec.Name,
		Instr:  spec.NomInstrEnergy,
		L1:     spec.NomL1Energy,
		L2:     spec.NomL2Energy,
		VRAM:   spec.NomVRAMEnergy,
		Static: spec.NomStaticPower,
	}
}

// benchSchedFleet boots a 3-node fleet behind the router, registers the
// E18 short cluster's interfaces over the wire, and returns a warm
// scheduler (one full interface-policy run so every canonical query is
// in the fleet memo).
func benchSchedFleet(b *testing.B) (*schedsvc.Scheduler, func()) {
	b.Helper()
	cfg := experiments.E18Config(true)
	f, err := fleet.New(fleet.Config{Nodes: 3})
	if err != nil {
		b.Fatal(err)
	}
	_, base, stop, err := f.StartRouter("")
	if err != nil {
		f.Close()
		b.Fatal(err)
	}
	c := eisvc.NewClient(base).TuneTransport(eisvc.TransportTuning{})
	c.Binary = true
	s, err := schedsvc.New(cfg, c)
	if err == nil {
		err = s.Register(context.Background())
	}
	if err == nil {
		_, err = s.Run(context.Background(), schedsvc.PolicyInterface, 6)
	}
	if err != nil {
		stop()
		f.Close()
		b.Fatal(err)
	}
	return s, func() { stop(); f.Close() }
}

// BenchmarkSchedRound measures one warm interface-policy scheduling
// round end to end: canonical demand + cost evalbatch over the binary
// wire (memo-served), candidate ranking, greedy placement, and the
// ground-truth simulation, for the E18 short cluster (~200 nodes, ~25k
// tasks).
func BenchmarkSchedRound(b *testing.B) {
	s, cleanup := benchSchedFleet(b)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(context.Background(), schedsvc.PolicyInterface, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedPlacementBatch measures the wire path alone: the full
// canonical query set of one scheduling round (every cohort demand and
// every candidate price) as a single warm /v1/evalbatch through the
// router.
func BenchmarkSchedPlacementBatch(b *testing.B) {
	s, cleanup := benchSchedFleet(b)
	defer cleanup()
	reqs := append(s.DemandRequests(0), s.CostRequests()...)
	client := s.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, err := client.EvalBatch(reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range items {
			if it.Status != 200 {
				b.Fatalf("item failed: %s", it.Error)
			}
		}
	}
	b.ReportMetric(float64(len(reqs)), "items/batch")
}

// benchOptimizeRequest is the MoE stack's full 60-configuration knob
// space (E19's sweep), priced by exact enumeration over its 324 joint
// ECV assignments.
func benchOptimizeRequest(seed int64) eisvc.OptimizeRequest {
	return eisvc.OptimizeRequest{
		Interface:     "moe_stack",
		EnergyMethod:  "energy",
		LatencyMethod: "latency",
		Knobs: []eisvc.OptimizeKnob{
			{Name: "batch", Values: []float64{1, 2, 4, 8, 16}},
			{Name: "level", Values: []float64{0, 1, 2, 3}},
			{Name: "replicas", Values: []float64{1, 2, 4}},
		},
		SLOMs:     25,
		EnumLimit: 1 << 12,
		Seed:      seed,
	}
}

// BenchmarkOptimizeSweep measures POST /v1/optimize end to end over the
// binary wire: cold (every configuration freshly enumerated — distinct
// seeds defeat the memo) and warm (the repeat sweep, entirely
// memo-served, which is what a dashboard re-asking the SLO question
// pays).
func BenchmarkOptimizeSweep(b *testing.B) {
	srv := eisvc.NewServer(eisvc.Config{})
	if _, err := srv.Registry().RegisterSource(nn.MoEEIL); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := eisvc.NewClient(ts.URL)
	c.Binary = true
	var seed int64 // persists across the harness's calibration reruns
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed++
			res, err := c.Optimize(benchOptimizeRequest(seed))
			if err != nil {
				b.Fatal(err)
			}
			if res.MemoServed != 0 {
				b.Fatal("distinct seeds must not hit the memo")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		req := benchOptimizeRequest(-1)
		first, err := c.Optimize(req) // prime the memo
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := c.Optimize(req)
			if err != nil {
				b.Fatal(err)
			}
			if res.MemoServed != res.Evals {
				b.Fatal("repeat sweep missed the memo")
			}
			if res.Digest != first.Digest {
				b.Fatal("repeat sweep diverged")
			}
		}
	})
}
