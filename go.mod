module energyclarity

go 1.22
