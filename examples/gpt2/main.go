// The Table 1 pipeline on one GPU: calibrate the hardware energy interface
// with microbenchmarks, compose the GPT-2 interface on top, predict
// inference energy across generation lengths, and compare against NVML
// measurements of the actual (simulated) inference.
package main

import (
	"fmt"
	"log"

	"energyclarity/internal/core"
	"energyclarity/internal/energy"
	"energyclarity/internal/gpusim"
	"energyclarity/internal/microbench"
	"energyclarity/internal/nn"
	"energyclarity/internal/nvml"
)

func main() {
	spec := gpusim.RTX4090()
	gpu := gpusim.NewGPU(spec, 30)

	fmt.Printf("device: %s (%d SMs, %.0f MiB L2)\n",
		spec.Name, spec.SMCount, spec.L2Bytes/(1<<20))

	// Step 1: derive the hardware energy interface (§5: microbenchmarks +
	// the on-board sensor; the device's true coefficients stay hidden).
	coef, err := microbench.Calibrate(gpu, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated coefficients: instr %.3g J, L1 %.3g J, L2 %.3g J, VRAM %.3g J, static %v\n\n",
		float64(coef.Instr), float64(coef.L1), float64(coef.L2), float64(coef.VRAM), coef.Static)

	// Step 2: the GPT-2 energy interface, composed over the device
	// interface — "static power, VRAM sector reads/writes, L2 sector
	// reads/writes, L1 wavefront reads/writes, and instruction executions".
	iface, err := nn.StackInterface(nn.GPT2Small(), coef.DeviceInterface(spec))
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: predict and measure across generation lengths.
	eng, err := nn.NewEngine(nn.GPT2Small(), gpu)
	if err != nil {
		log.Fatal(err)
	}
	meter := nvml.NewMeter(gpu)
	fmt.Println("tokens  predicted      measured       error")
	fmt.Println("--------------------------------------------")
	var sum, max float64
	counts := []int{10, 25, 50, 100, 150, 200}
	for _, tok := range counts {
		gpu.Idle(1.0)
		pred, err := iface.ExpectedJoules("generate", core.Num(16), core.Num(float64(tok)))
		if err != nil {
			log.Fatal(err)
		}
		snap := meter.Snapshot()
		if _, err := eng.Generate(16, tok); err != nil {
			log.Fatal(err)
		}
		meas := meter.EnergySince(snap)
		rel := energy.RelativeError(pred, meas)
		sum += rel
		if rel > max {
			max = rel
		}
		fmt.Printf("%6d  %-13v  %-13v  %.2f%%\n", tok, pred, meas, 100*rel)
	}
	fmt.Printf("\naverage error %.2f%%, max error %.2f%% (paper, RTX4090: 0.70%% / 0.93%%)\n",
		100*sum/float64(len(counts)), 100*max)

	// Bonus: the interface decomposes the cost, which measurement cannot.
	prefill, _ := iface.ExpectedJoules("prefill", core.Num(16))
	first, _ := iface.ExpectedJoules("decode_token", core.Num(16))
	last, _ := iface.ExpectedJoules("decode_token", core.Num(215))
	fmt.Printf("\ncost structure (readable from the interface, not from a meter):\n")
	fmt.Printf("  prefill of 16 tokens:   %v\n", prefill)
	fmt.Printf("  decode at position 16:  %v\n", first)
	fmt.Printf("  decode at position 215: %v (KV cache makes later tokens dearer)\n", last)
}
