// Quickstart: build an energy interface with the public Go API, read it,
// evaluate it in several modes, and rebind its hardware layer — the
// complete core workflow in one file.
package main

import (
	"fmt"
	"log"

	"energyclarity"
)

func main() {
	// 1. A hardware-layer interface: what the vendor (or a calibration
	// pass) provides. Costs are per-operation joules.
	hw := energyclarity.New("dsp_v1").
		SetDoc("first-generation DSP").
		MustMethod(energyclarity.Method{
			Name: "fft", Params: []string{"points"},
			Body: func(c *energyclarity.Call) energyclarity.Joules {
				return energyclarity.Joules(c.Num(0)) * 3 * energyclarity.Nanojoule
			},
		}).
		MustMethod(energyclarity.Method{
			Name: "dma", Params: []string{"bytes"},
			Body: func(c *energyclarity.Call) energyclarity.Joules {
				return energyclarity.Joules(c.Num(0)) * 0.5 * energyclarity.Nanojoule
			},
		})

	// 2. An application-layer interface composed on top: an audio pipeline
	// that sometimes skips work because of a silence detector. Whether a
	// frame is silent is not part of the input — it is an energy-critical
	// variable (ECV).
	pipeline := energyclarity.New("audio_pipeline").
		MustECV(energyclarity.BoolECV("silent_frame", 0.35, "frame below the silence threshold")).
		MustBind("dsp", hw).
		MustMethod(energyclarity.Method{
			Name: "process_frame", Params: []string{"samples"},
			Body: func(c *energyclarity.Call) energyclarity.Joules {
				samples := c.Num(0)
				// The DMA in always happens.
				e := c.E("dsp", "dma", energyclarity.Num(samples*2))
				if c.ECVBool("silent_frame") {
					return e // silence: skip the FFT entirely
				}
				return e + c.E("dsp", "fft", energyclarity.Num(samples))
			},
		})

	// 3. Read the interface (developers), then execute it (resource
	// managers) — §2's two audiences.
	fmt.Print(pipeline.Describe())
	frame := []energyclarity.Value{energyclarity.Num(4096)}

	expected, err := pipeline.Eval("process_frame", frame, energyclarity.Expected())
	if err != nil {
		log.Fatal(err)
	}
	worst, err := pipeline.WorstCaseJoules("process_frame", energyclarity.Num(4096))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper 4096-sample frame:\n")
	fmt.Printf("  expected: %v (distribution %v)\n", energyclarity.Joules(expected.Mean()), expected)
	fmt.Printf("  worst:    %v\n", worst)

	// 4. New hardware generation arrives: rebind the bottom layer; the
	// pipeline interface is untouched (Fig. 2's layered-view advantage).
	hw2 := energyclarity.New("dsp_v2").
		MustMethod(energyclarity.Method{
			Name: "fft", Params: []string{"points"},
			Body: func(c *energyclarity.Call) energyclarity.Joules {
				return energyclarity.Joules(c.Num(0)) * 1 * energyclarity.Nanojoule
			},
		}).
		MustMethod(energyclarity.Method{
			Name: "dma", Params: []string{"bytes"},
			Body: func(c *energyclarity.Call) energyclarity.Joules {
				return energyclarity.Joules(c.Num(0)) * 0.4 * energyclarity.Nanojoule
			},
		})
	upgraded, err := pipeline.Rebind("dsp", hw2)
	if err != nil {
		log.Fatal(err)
	}
	after, err := upgraded.Eval("process_frame", frame, energyclarity.Expected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter rebinding to dsp_v2:\n")
	fmt.Printf("  expected: %v (was %v)\n",
		energyclarity.Joules(after.Mean()), energyclarity.Joules(expected.Mean()))
	fmt.Printf("  savings:  %.1f%%\n", 100*(1-after.Mean()/expected.Mean()))

	// 5. The same interface in EIL, the paper's Fig. 1 style.
	eilIface, err := energyclarity.CompileOne(`
	interface dsp_v1 {
	  func fft(points) { return 3nJ * points }
	  func dma(bytes)  { return 0.5nJ * bytes }
	}
	interface audio_pipeline {
	  ecv silent_frame: bernoulli(0.35) "frame below the silence threshold"
	  uses dsp: dsp_v1
	  func process_frame(samples) {
	    let e = dsp.dma(samples * 2)
	    if silent_frame { return e }
	    return e + dsp.fft(samples)
	  }
	}`, nil)
	if err != nil {
		log.Fatal(err)
	}
	same, err := eilIface.Eval("process_frame", frame, energyclarity.Expected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEIL version agrees: %v vs %v\n",
		energyclarity.Joules(same.Mean()), energyclarity.Joules(expected.Mean()))
}
