// LLM serving as a resource-management problem: how large a decode batch
// should a GPT-2 server run? Bigger batches amortize the per-step weight
// streaming (the dominant energy cost) over more tokens, but stretch the
// per-step latency. The stack interface's batched methods quantify the
// whole trade-off curve before anything is deployed.
package main

import (
	"fmt"
	"log"

	"energyclarity/internal/core"
	"energyclarity/internal/energy"
	"energyclarity/internal/gpusim"
	"energyclarity/internal/microbench"
	"energyclarity/internal/nn"
	"energyclarity/internal/nvml"
)

func main() {
	spec := gpusim.RTX4090()
	gpu := gpusim.NewGPU(spec, 30)
	coef, err := microbench.Calibrate(gpu, 3)
	if err != nil {
		log.Fatal(err)
	}
	cfg := nn.GPT2Small()
	iface, err := nn.StackInterface(cfg, coef.DeviceInterface(spec))
	if err != nil {
		log.Fatal(err)
	}
	if err := nn.AddBatchMethods(iface, cfg); err != nil {
		log.Fatal(err)
	}
	eng, err := nn.NewEngine(cfg, gpu)
	if err != nil {
		log.Fatal(err)
	}
	meter := nvml.NewMeter(gpu)

	const prompt, tokens = 16, 50
	fmt.Println("batch  predicted J/tok  measured J/tok  step latency")
	fmt.Println("------------------------------------------------------")
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		pred, err := iface.ExpectedJoules("generate_batch",
			core.Num(float64(batch)), core.Num(prompt), core.Num(tokens))
		if err != nil {
			log.Fatal(err)
		}
		gpu.Idle(1.0)
		snap := meter.Snapshot()
		st, err := eng.GenerateBatch(batch, prompt, tokens)
		if err != nil {
			log.Fatal(err)
		}
		meas := meter.EnergySince(snap)
		perTokPred := pred / energy.Joules(float64(batch*tokens))
		perTokMeas := meas / energy.Joules(float64(batch*tokens))
		fmt.Printf("%5d  %-15v  %-14v  %.2f ms\n",
			batch, perTokPred, perTokMeas, 1e3*st.Duration/tokens)
	}
	fmt.Println()
	fmt.Println("the curve is emergent: the batched matmuls' reuse factor grows with")
	fmt.Println("the batch, so the datasheet cache model routes less weight traffic to")
	fmt.Println("VRAM per token — the interface states structure, and amortization")
	fmt.Println("falls out of it.")
}
