// The §1 ClusterFuzz scenario: "What is the optimal number of machines to
// deploy to minimize energy consumption while achieving 95% testing
// coverage?" — answered two ways: by evaluating the fleet's energy
// interface (derived from the IaC config, costing nothing), and by the
// status-quo trial-and-error loop of deploying, measuring, and redeploying.
package main

import (
	"fmt"
	"log"

	"energyclarity/internal/cluster"
	"energyclarity/internal/core"
)

func main() {
	cfg := cluster.DefaultConfig()
	iface, err := cluster.Interface(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the campaign's energy interface (derived from IaC):")
	fmt.Print(iface.Describe())

	const maxN = 48

	// Answer 1: from the interface. No machines deployed.
	fmt.Println("\nfleet-size sweep from the interface (95% coverage):")
	fmt.Println("  N    energy       duration")
	for _, n := range []int{1, 2, 4, 8, 12, 16, 24, 32, 48} {
		e, err := iface.ExpectedJoules("campaign", core.Num(float64(n)), core.Num(0.95))
		if err != nil {
			log.Fatal(err)
		}
		d, err := iface.ExpectedJoules("duration", core.Num(float64(n)), core.Num(0.95))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d   %-11v  %.1f h\n", n, e, float64(d)/3600)
	}
	bestN, bestE, err := cluster.OptimalFleet(iface, maxN, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninterface answer: N = %d machines, campaign energy %v, search energy 0 J\n",
		bestN, bestE)

	// Answer 2: how much of 90→95% coverage costs, same fleet (§1's second
	// question).
	marginal, err := iface.ExpectedJoules("marginal",
		core.Num(float64(bestN)), core.Num(0.90), core.Num(0.95))
	if err != nil {
		log.Fatal(err)
	}
	at90, err := iface.ExpectedJoules("campaign", core.Num(float64(bestN)), core.Num(0.90))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raising coverage 90%%→95%% at N=%d costs %v extra (+%.0f%% on top of %v)\n",
		bestN, marginal, 100*float64(marginal)/float64(at90), at90)

	// The status quo: deploy every candidate fleet and measure.
	trueN, trueE, spent, err := cluster.TrialAndError(cfg, maxN, 0.95, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrial-and-error answer: N = %d (campaign %v), but the search itself burned %v\n",
		trueN, trueE, spent)
	fmt.Printf("— %.0fx the optimal campaign's energy, \"this trial-and-error process could\n",
		float64(spent)/float64(bestE))
	fmt.Println("consume more energy than it saves\" (§1).")
}
