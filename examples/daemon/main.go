// Daemon quickstart: the Fig. 2 resource-manager workflow over a network
// boundary. An eid daemon starts in-process on a loopback port; a client
// registers a two-layer EIL stack over the wire, evaluates it (the repeat
// is a memo hit), swaps the hardware layer with a rebind — which
// invalidates the memo — and reads the serving stats and energy ledger.
//
// Against a standalone daemon the flow is identical:
//
//	go run ./cmd/eid -addr 127.0.0.1:7757 &
//	... eisvc.NewClient("http://127.0.0.1:7757") ...
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"energyclarity/internal/core"
	"energyclarity/internal/eisvc"
)

const stack = `
interface dsp_v1 "first-generation DSP" {
  func fft(points) { return 3nJ * points }
  func dma(bytes)  { return 0.5nJ * bytes }
}

interface dsp_v2 "next-gen DSP: fft block redesigned" {
  func fft(points) { return 1nJ * points }
  func dma(bytes)  { return 0.5nJ * bytes }
}

interface audio_pipeline "frame pipeline with a silence detector" {
  ecv silent_frame: bernoulli(0.35) "frame below the silence threshold"
  uses dsp: dsp_v1

  func process_frame(samples) {
    if silent_frame {
      return dsp.dma(samples * 2)
    }
    return dsp.dma(samples * 2) + dsp.fft(samples)
  }
}
`

func main() {
	// Serve on a loopback port. `go run ./cmd/eid` does exactly this, plus
	// flags for workers, queue depth, memo capacity, and deadlines.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: eisvc.NewServer(eisvc.Config{})}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	c := eisvc.NewClient("http://" + ln.Addr().String())
	c.ID = "quickstart" // names this client in the daemon's energy ledger

	// ① The program exports its energy interfaces to the resource manager.
	infos, err := c.Register(stack)
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range infos {
		fmt.Printf("registered %s v%d  methods=%v ecvs=%v\n",
			info.Name, info.Version, info.Methods, info.ECVs)
	}

	// ② The resource manager queries them. The answer is an exact
	// distribution, bit-identical to a local Interface.Eval.
	args := []core.Value{core.Num(4096)}
	d, _, err := c.Eval("audio_pipeline", "process_frame", args, core.Expected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E[process_frame(4096)] = %s  (p99 %.3g J)\n", d, d.Quantile(0.99))

	// ③ Asking again is a memo hit: no re-evaluation, one HTTP round-trip.
	_, resp, err := c.Eval("audio_pipeline", "process_frame", args, core.Expected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat answered from memo: cached=%v\n", resp.Cached)

	// ④ Hardware changes: rebind just the bottom layer. The interface gets
	// a fresh version, so every memoized answer for the old one is dead.
	if _, err := c.Rebind("audio_pipeline", "dsp", "dsp_v2"); err != nil {
		log.Fatal(err)
	}
	d2, resp, err := c.Eval("audio_pipeline", "process_frame", args, core.Expected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rebind to dsp_v2: %s  (cached=%v)\n", d2, resp.Cached)

	// The daemon attributes every evaluated joule to the asking client.
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d requests, %d memo hit(s), %.3g J attributed to %q\n",
		st.EvalRequests, st.MemoHits, st.Clients[c.ID].MeanJ, c.ID)
}
