// Fig. 1 end to end: the paper's ML-model web service running on the
// simulated stack (host + GPU + two-tier cache), its energy interface
// built by the resource manager from observed cache statistics, and a
// prediction-vs-measurement comparison over a live request window.
package main

import (
	"fmt"
	"log"

	"energyclarity/internal/core"
	"energyclarity/internal/energy"
	"energyclarity/internal/gpusim"
	"energyclarity/internal/microbench"
	"energyclarity/internal/mlservice"
	"energyclarity/internal/nn"
	"energyclarity/internal/nvml"
	"energyclarity/internal/rapl"
	"energyclarity/internal/trace"
)

func main() {
	// Assemble the Fig. 2 stack: a serving host and a GPU.
	host := mlservice.NewHost(mlservice.DefaultHostSpec(), 3)
	gpu := gpusim.NewGPU(gpusim.RTX4090(), 30)
	svc, err := mlservice.NewService(host, gpu, nn.Fig1CNN(), 128, 512)
	if err != nil {
		log.Fatal(err)
	}

	// Derive the GPU's hardware energy interface by microbenchmarking
	// (§5's methodology), then the CNN interface on top of it.
	coef, err := microbench.Calibrate(gpu, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %s: instr %.3g J, l1 %.3g J, l2 %.3g J, vram %.3g J, static %v\n",
		coef.Device, float64(coef.Instr), float64(coef.L1), float64(coef.L2),
		float64(coef.VRAM), coef.Static)
	cnnIface, err := nn.CNNEnergyInterface(nn.Fig1CNN(), gpu.Spec(), coef.HardwareInterface())
	if err != nil {
		log.Fatal(err)
	}

	// Drive the service with a Zipf request stream; the resource manager
	// estimates the interface's ECVs from its own counters.
	z := trace.NewZipf(2048, 1.25, 9)
	req := func() mlservice.Request {
		return mlservice.Request{Key: z.Next(), Pixels: 640 * 480, Zeros: 3e4}
	}
	for i := 0; i < 6000; i++ {
		if _, err := svc.Handle(req()); err != nil {
			log.Fatal(err)
		}
		if i == 3999 {
			svc.ResetStats() // end of warmup; estimate from steady state
		}
	}
	pHit, pLocal, _ := svc.EstimatedECVs()
	fmt.Printf("estimated ECVs: P(request_hit)=%.3f  P(local_cache_hit|hit)=%.3f\n", pHit, pLocal)

	iface, err := svc.Interface(pHit, pLocal, cnnIface)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe service's energy interface (Fig. 1 as a runnable object):")
	fmt.Print(iface.Describe())

	// Predict one request's energy distribution.
	reqVal := core.Record(map[string]core.Value{
		"pixels": core.Num(640 * 480), "zeros": core.Num(3e4),
	})
	d, err := iface.Eval("handle", []core.Value{reqVal}, core.Expected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted per-request energy: mean %v, worst %v, dist %v\n",
		energy.Joules(d.Mean()), energy.Joules(d.Max()), d)

	// Measure a live window with RAPL (host) + NVML (GPU) and compare.
	const window = 3000
	raplWin := rapl.NewCounter(host, rapl.DefaultESU).NewWindow()
	meter := nvml.NewMeter(gpu)
	snap := meter.Snapshot()
	for i := 0; i < window; i++ {
		if _, err := svc.Handle(req()); err != nil {
			log.Fatal(err)
		}
		if i%100 == 0 {
			raplWin.Poll()
		}
	}
	measured := (raplWin.Energy() + meter.EnergySince(snap)) / window
	predicted := energy.Joules(d.Mean())
	fmt.Printf("measured per-request energy:  %v over %d requests\n", measured, window)
	fmt.Printf("prediction error: %.2f%%\n", 100*energy.RelativeError(predicted, measured))

	// What the interface teaches (§3): raising local hits beats optimizing
	// the model. Compare the two knobs.
	better, err := svc.Interface(pHit, 1.0, cnnIface) // perfect locality
	if err != nil {
		log.Fatal(err)
	}
	db, err := better.Eval("handle", []core.Value{reqVal}, core.Expected())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nif every hit were local:       %v per request (%.1f%% saved)\n",
		energy.Joules(db.Mean()), 100*(1-db.Mean()/d.Mean()))
}
