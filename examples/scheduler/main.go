// The §1 Linux-EAS scenario: four real-time transcoding tasks with bimodal
// demand (compute peaks while transcoding, troughs during I/O) on a 4+4
// big.LITTLE chip. The utilization-proxy scheduler chases phases it cannot
// predict; the interface-aware scheduler reads each task's energy interface
// and places work before the phase change.
package main

import (
	"fmt"
	"log"

	"energyclarity/internal/cpusim"
	"energyclarity/internal/sched"
	"energyclarity/internal/trace"
)

func tasks() []*sched.Task {
	out := make([]*sched.Task, 4)
	for i := range out {
		b := trace.NewBimodal(
			55e6,  // peak: 55M cycles per 10ms quantum — needs big@2.4GHz
			1.5e6, // trough: fits little@0.6GHz
			8, 8, i*4, 0.05, int64(100+i),
		)
		out[i] = &sched.Task{
			Name:   fmt.Sprintf("transcode-%d", i),
			Demand: b.Demand,
			Iface:  sched.TaskInterface(fmt.Sprintf("transcode-%d", i), b.Base),
		}
	}
	return out
}

func main() {
	const quanta = 640 // 6.4 seconds of 10ms quanta

	chipA := cpusim.BigLITTLE()
	baseline, err := sched.Run(chipA, sched.NewEASBaseline(chipA, 4, 0.3), tasks(), quanta)
	if err != nil {
		log.Fatal(err)
	}
	chipB := cpusim.BigLITTLE()
	aware, err := sched.Run(chipB, sched.NewInterfaceAware(chipB, 0.10), tasks(), quanta)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scheduler         total energy   backlog (QoS penalty)")
	fmt.Println("------------------------------------------------------")
	fmt.Printf("%-16s  %-13v  %.2f%%\n", baseline.Scheduler,
		baseline.TotalEnergy, 100*baseline.UnmetFraction())
	fmt.Printf("%-16s  %-13v  %.2f%%\n", aware.Scheduler,
		aware.TotalEnergy, 100*aware.UnmetFraction())

	fmt.Printf("\nthe utilization proxy predicts the *past*: after each I/O trough it\n")
	fmt.Printf("parks the task on a little core, the compute peak arrives, work\n")
	fmt.Printf("backs up, and the task burns catch-up cycles at the worst operating\n")
	fmt.Printf("point. The task's energy interface states demand as a function of\n")
	fmt.Printf("the quantum index, so placement leads the phase instead of lagging it.\n")
	if save := 1 - float64(aware.TotalEnergy)/float64(baseline.TotalEnergy); save > 0 {
		fmt.Printf("\ninterface-aware scheduling also saved %.1f%% energy.\n", 100*save)
	} else {
		fmt.Printf("\ninterface-aware scheduling spent %.1f%% more energy to eliminate the backlog.\n",
			100*(float64(aware.TotalEnergy)/float64(baseline.TotalEnergy)-1))
	}
}
