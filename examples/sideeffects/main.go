// The paper's §4.2 side-effect example, end to end: "if an app causes a
// smartphone's WiFi radio to turn on, subsequent apps using WiFi will
// consume less energy than if it had been them turning the radio on."
//
// A wifi_send implementation (in the extraction IR) pays the radio
// power-up cost only when the radio is off — and leaves it on. The §4.2
// analyzer derives its energy interface, reports the side effect, and a
// resource manager composes exact sequence-level predictions by threading
// the declared state transition through per-call evaluations.
package main

import (
	"fmt"
	"log"

	"energyclarity/internal/core"
	"energyclarity/internal/eil"
	"energyclarity/internal/energy"
	"energyclarity/internal/extract"
)

func wifiModule() *extract.Module {
	return &extract.Module{
		Name:   "wifi_send",
		Params: []string{"bytes"},
		Body: []extract.Instr{
			extract.StateIf{
				State: "radio_on", PTrue: 0.5, Doc: "WiFi radio powered",
				Else: []extract.Instr{
					extract.Charge{Binding: "radio", Method: "power_up"},
				},
			},
			extract.SetState{State: "radio_on", Value: true},
			extract.Charge{Binding: "radio", Method: "tx",
				Args: []*extract.Expr{extract.Arg("bytes")}},
		},
	}
}

func radio() *core.Interface {
	return core.New("wifi_radio").
		MustMethod(core.Method{Name: "power_up",
			Doc:  "bring the radio out of deep sleep",
			Body: func(c *core.Call) energy.Joules { return 800 * energy.Millijoule }}).
		MustMethod(core.Method{Name: "tx", Params: []string{"bytes"},
			Doc: "transmit a payload",
			Body: func(c *core.Call) energy.Joules {
				return energy.Joules(c.Num(0)) * 2 * energy.Microjoule
			}})
}

func main() {
	m := wifiModule()

	// §4.2: derive the interface and the side-effect summary.
	analysis, err := extract.Analyze(m, map[string]string{"radio": "wifi_radio"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived interface (note the side effect in the doc string):")
	fmt.Println(analysis.EIL)
	fmt.Printf("reads hidden state: %v\n", analysis.Reads)
	for _, e := range analysis.Effects {
		fmt.Printf("declared effect:    %s\n", e)
	}

	compiled, err := eil.Compile(analysis.EIL,
		map[string]*core.Interface{"wifi_radio": radio()})
	if err != nil {
		log.Fatal(err)
	}
	iface := compiled["wifi_send"]

	// A resource manager predicts a 4-message burst, threading the declared
	// effect: only the first message pays for the radio.
	var predSteps []extract.SequenceStep
	var runSteps []extract.RunStep
	for i := 0; i < 4; i++ {
		args := []core.Value{core.Num(1500)}
		predSteps = append(predSteps, extract.SequenceStep{
			Interface: iface, Analysis: analysis, Args: args,
		})
		runSteps = append(runSteps, extract.RunStep{Module: m, Args: args})
	}
	predicted, _, err := extract.PredictSequence(predSteps, map[string]bool{"radio_on": false})
	if err != nil {
		log.Fatal(err)
	}
	actual, _, err := extract.RunSequence(runSteps,
		map[string]*core.Interface{"radio": radio()}, map[string]bool{"radio_on": false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4-message burst from cold radio:\n")
	fmt.Printf("  predicted: %v\n", energy.Joules(predicted))
	fmt.Printf("  actual:    %v\n", energy.Joules(actual))

	// The paper's sentence, quantified: the second sender rides the first
	// sender's side effect.
	firstOnly, _, err := extract.RunSequence(runSteps[:1],
		map[string]*core.Interface{"radio": radio()}, map[string]bool{"radio_on": false})
	if err != nil {
		log.Fatal(err)
	}
	second := actual - firstOnly
	fmt.Printf("\nfirst message (turns the radio on): %v\n", energy.Joules(firstOnly))
	fmt.Printf("each following message:              %v (%.0fx cheaper)\n",
		energy.Joules(second/3), firstOnly/(second/3))
}
